"""Tests for the single-pass chained scan extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.arch import KEPLER_K80
from repro.gpusim.device import GPU
from repro.gpusim.kernel import ExecutionEngine
from repro.core.chained import ScanChained
from repro.core.params import ProblemConfig
from repro.primitives.sequential import exclusive_scan


class TestChainedScan:
    def test_inclusive_correct(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 14)).astype(np.int32)
        result = ScanChained(machine.gpus[0]).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))
        assert result.proposal == "scan-chained"

    def test_exclusive_correct(self, machine, rng):
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        result = ScanChained(machine.gpus[0]).run(data, inclusive=False)
        np.testing.assert_array_equal(result.output, exclusive_scan(data, axis=-1))

    def test_single_kernel_launch(self, machine, rng):
        """The defining property: one pass, one launch."""
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        result = ScanChained(machine.gpus[0]).run(data)
        assert len(result.trace.kernel_records()) == 1
        assert result.trace.phases() == ["chained"]

    def test_moves_fewer_bytes_than_three_kernel(self, machine, rng):
        from repro.core.single_gpu import ScanSP

        data = rng.integers(0, 100, (4, 1 << 14)).astype(np.int32)
        chained = ScanChained(machine.gpus[0]).run(data, collect=False)
        three = ScanSP(machine.gpus[0]).run(data, collect=False)

        def payload_bytes(result):
            return sum(
                r.global_bytes_read + r.global_bytes_written
                for r in result.trace.kernel_records()
            )

        assert payload_bytes(chained) < payload_bytes(three)
        # ... and is therefore faster on one GPU under the roofline.
        assert chained.total_time_s < three.total_time_s

    def test_operator_generic(self, machine, rng):
        data = rng.integers(-100, 100, (2, 2048)).astype(np.int64)
        result = ScanChained(machine.gpus[0]).run(data, operator="max")
        np.testing.assert_array_equal(result.output, np.maximum.accumulate(data, axis=1))

    def test_ordered_blockwise_execution(self, rng):
        """In blockwise mode the chain must still resolve (ascending order
        is forced for ordered launches)."""
        gpu = GPU(
            0, KEPLER_K80,
            engine=ExecutionEngine(mode="blockwise", rng=np.random.default_rng(9)),
        )
        data = rng.integers(0, 100, (2, 1 << 13)).astype(np.int32)
        result = ScanChained(gpu).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_estimate_matches_functional(self, machine, rng):
        problem = ProblemConfig.from_sizes(N=1 << 14, G=8)
        executor = ScanChained(machine.gpus[0])
        functional = executor.run(
            rng.integers(0, 100, (8, 1 << 14)).astype(np.int32), collect=False
        )
        estimated = executor.estimate(problem)
        assert functional.total_time_s == pytest.approx(
            estimated.total_time_s, rel=1e-12
        )
        f = functional.trace.kernel_records()[0]
        e = estimated.trace.kernel_records()[0]
        assert f.global_bytes_read == e.global_bytes_read
        assert f.shuffle_instructions == e.shuffle_instructions
        assert f.operator_applications == e.operator_applications

    def test_memory_released(self, machine, rng):
        gpu = machine.gpus[0]
        before = gpu.pool.used
        ScanChained(gpu).run(rng.integers(0, 10, (2, 2048)).astype(np.int32))
        assert gpu.pool.used == before

    @given(
        log_n=st.integers(min_value=6, max_value=13),
        log_g=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, log_n, log_g, seed):
        gpu = GPU(0, KEPLER_K80)
        rng = np.random.default_rng(seed)
        data = rng.integers(-1000, 1000, (1 << log_g, 1 << log_n)).astype(np.int64)
        result = ScanChained(gpu).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=-1))
