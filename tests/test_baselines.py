"""Tests for the modelled competitor libraries."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    CUB,
    CUDPP,
    LIGHTSCAN,
    MODERNGPU,
    THRUST,
    get_baseline,
)
from repro.errors import ConfigurationError
from repro.gpusim.arch import KEPLER_K80


class TestRegistry:
    def test_all_five(self):
        assert {lib.name for lib in ALL_BASELINES} == {
            "cudpp", "thrust", "moderngpu", "cub", "lightscan",
        }

    def test_lookup(self):
        assert get_baseline("CUB") is CUB
        with pytest.raises(KeyError):
            get_baseline("nccl")  # the paper notes NCCL has no scan


class TestFunctional:
    @pytest.mark.parametrize("lib", ALL_BASELINES, ids=lambda l: l.name)
    def test_inclusive_correct(self, lib, rng):
        data = rng.integers(0, 100, (4, 1024)).astype(np.int32)
        result = lib.run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    @pytest.mark.parametrize("lib", ALL_BASELINES, ids=lambda l: l.name)
    def test_exclusive_correct(self, lib, rng):
        data = rng.integers(0, 100, (2, 512)).astype(np.int32)
        result = lib.run(data, inclusive=False)
        expected = np.zeros_like(data)
        expected[:, 1:] = np.cumsum(data, axis=1, dtype=np.int32)[:, :-1]
        np.testing.assert_array_equal(result.output, expected)

    @pytest.mark.parametrize("lib", ALL_BASELINES, ids=lambda l: l.name)
    def test_operator_generic(self, lib, rng):
        data = rng.integers(-100, 100, 2048).astype(np.int32)
        result = lib.run(data, operator="max")
        np.testing.assert_array_equal(result.output[0], np.maximum.accumulate(data))

    def test_collect_false(self, rng):
        data = rng.integers(0, 100, (2, 512)).astype(np.int32)
        result = CUB.run(data, collect=False)
        assert result.output is None and result.total_time_s > 0


class TestCostStructure:
    @pytest.mark.parametrize("lib", ALL_BASELINES, ids=lambda l: l.name)
    def test_time_monotone_in_n(self, lib):
        times = [lib.time_single(1 << n) for n in (16, 20, 24, 28)]
        assert times == sorted(times)

    def test_invocation_time_positive_and_floored(self):
        t = THRUST.per_call.invocation_time(KEPLER_K80, 1)
        assert t > THRUST.per_call.host_overhead_s

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            CUB.per_call.invocation_time(KEPLER_K80, 0)

    def test_cub_is_fastest_single_call_large_n(self):
        n = 1 << 28
        cub = CUB.time_single(n)
        for lib in (CUDPP, THRUST, MODERNGPU):
            assert cub < lib.time_single(n)

    def test_thrust_per_call_overhead_dominates_small_n(self):
        """The paper's 7.8x-at-G=1 story: Thrust's per-call fixed costs."""
        t = THRUST.time_single(1 << 13)
        assert t > 100e-6


class TestModeSelection:
    def test_cub_switches_to_segmented_for_small_problems(self):
        """The paper: CUB per-call wins for n >= 17, segmented below."""
        _, mode_small = CUB.time_batch(1 << 13, 1 << 15)
        _, mode_large = CUB.time_batch(1 << 25, 8)
        assert mode_small == "segmented"
        assert mode_large == "per_call"

    def test_thrust_switches_later_than_cub(self):
        """Thrust's segmented mode survives to larger n than CUB's (the
        paper quotes n<21 vs n<17)."""
        cub_switch = min(
            n for n in range(13, 29) if CUB.time_batch(1 << n, 1 << (28 - n))[1] == "per_call"
        )
        thrust_switch = min(
            n for n in range(13, 29)
            if THRUST.time_batch(1 << n, 1 << (28 - n))[1] == "per_call"
        )
        assert cub_switch < thrust_switch

    def test_cudpp_uses_multiscan_for_batches(self):
        _, mode = CUDPP.time_batch(1 << 13, 1 << 15)
        assert mode == "multiscan"

    def test_moderngpu_has_only_per_call(self):
        _, mode = MODERNGPU.time_batch(1 << 13, 1 << 15)
        assert mode == "per_call"

    def test_batch_time_never_worse_than_g_calls(self):
        for lib in ALL_BASELINES:
            for n in (13, 20, 28):
                g = 1 << (28 - n)
                t_batch, _ = lib.time_batch(1 << n, g, KEPLER_K80)
                t_calls = g * lib.per_call.invocation_time(KEPLER_K80, 1 << n)
                assert t_batch <= t_calls * (1 + 1e-12)


class TestPaperRatios:
    """Large-N single-call relative rates roughly as Figure 11 implies."""

    def rate(self, lib, n=1 << 28):
        return n / lib.time_single(n)

    def test_lightscan_near_cub_at_large_n(self):
        assert self.rate(LIGHTSCAN) == pytest.approx(self.rate(CUB), rel=0.10)

    def test_thrust_clearly_slowest_at_large_n(self):
        others = [CUB, CUDPP, MODERNGPU, LIGHTSCAN]
        assert all(self.rate(THRUST) < self.rate(lib) for lib in others)

    def test_ordering_cub_cudpp_mgpu(self):
        assert self.rate(CUB) > self.rate(CUDPP) > self.rate(MODERNGPU)
