"""Tests for the empirical K tuner."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.core.params import NodeConfig, ProblemConfig
from repro.core.single_gpu import ScanSP
from repro.core.tuner import PremiseTuner, tune_k


class TestTuneK:
    def test_picks_minimum_time(self, machine, rng):
        data = rng.integers(0, 100, (4, 1 << 14)).astype(np.int32)
        gpu = machine.gpus[0]
        outcome = tune_k(
            lambda k: ScanSP(gpu, K=k).run(data, collect=False),
            [1, 2, 4, 8],
        )
        assert outcome.best.K in (1, 2, 4, 8)
        assert outcome.best.time_s == min(c.time_s for c in outcome.candidates)
        assert len(outcome.candidates) == 4

    def test_empty_space_rejected(self):
        with pytest.raises(TuningError):
            tune_k(lambda k: None, [])


class TestPremiseTuner:
    def test_search_space_shapes(self, machine):
        tuner = PremiseTuner(machine)
        problem = ProblemConfig.from_sizes(N=1 << 18, G=16)
        sp_space = tuner.search_space(problem, "sp")
        node = NodeConfig.from_counts(W=8, V=4)
        mps_space = tuner.search_space(problem, "mps", node)
        assert set(mps_space) <= set(sp_space)

    def test_tune_sp(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        outcome = PremiseTuner(machine).tune_sp(data)
        assert outcome.proposal == "sp"
        assert outcome.best_k >= 1

    def test_tune_mps(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        outcome = PremiseTuner(machine).tune_mps(node, data)
        # Eq. 2 bound: every candidate leaves >= W chunks.
        for cand in outcome.candidates:
            assert (1 << 13) // (cand.K * 1024) >= 4

    def test_tune_mppc(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=8, V=4)
        outcome = PremiseTuner(machine).tune_mppc(node, data)
        assert outcome.best_k >= 1

    def test_tune_multi_node(self, cluster, rng):
        data = rng.integers(0, 100, (4, 1 << 14)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        outcome = PremiseTuner(cluster).tune_mps(node, data)
        assert outcome.proposal == "mn-mps"

    def test_best_k_is_genuinely_best(self, machine, rng):
        """Re-running with the tuned K reproduces the winning time."""
        data = rng.integers(0, 100, (16, 1 << 13)).astype(np.int32)
        tuner = PremiseTuner(machine)
        outcome = tuner.tune_sp(data)
        rerun = ScanSP(machine.gpus[0], K=outcome.best_k).run(data, collect=False)
        assert rerun.total_time_s == pytest.approx(outcome.best.time_s, rel=1e-9)
