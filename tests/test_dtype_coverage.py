"""Dtype coverage: the kernels must be correct for every supported dtype."""

import numpy as np
import pytest

from repro import scan
from repro.core.params import ProblemConfig
from repro.core.premises import premise2_p
from repro.core.single_gpu import ScanSP

INT_DTYPES = [np.int8, np.int16, np.int32, np.int64,
              np.uint8, np.uint16, np.uint32, np.uint64]
FLOAT_DTYPES = [np.float32, np.float64]


class TestIntegerDtypes:
    @pytest.mark.parametrize("dtype", INT_DTYPES, ids=lambda d: np.dtype(d).name)
    def test_add_scan(self, machine, rng, dtype):
        info = np.iinfo(dtype)
        data = rng.integers(0, min(5, info.max), (4, 1024)).astype(dtype)
        result = scan(data, topology=machine, proposal="sp")
        with np.errstate(over="ignore"):
            expected = np.add.accumulate(data, axis=-1, dtype=dtype)
        np.testing.assert_array_equal(result.output, expected)
        assert result.output.dtype == np.dtype(dtype)

    @pytest.mark.parametrize("dtype", [np.int32, np.uint32, np.int64])
    def test_max_scan(self, machine, rng, dtype):
        info = np.iinfo(dtype)
        data = rng.integers(0, min(1000, info.max), (2, 512)).astype(dtype)
        result = scan(data, topology=machine, proposal="sp", operator="max")
        np.testing.assert_array_equal(result.output, np.maximum.accumulate(data, axis=-1))

    def test_unsigned_wraparound(self, machine):
        data = np.full((1, 256), 2**31, dtype=np.uint32)
        result = scan(data, topology=machine, proposal="sp")
        with np.errstate(over="ignore"):
            expected = np.add.accumulate(data, axis=-1, dtype=np.uint32)
        np.testing.assert_array_equal(result.output, expected)


class TestFloatDtypes:
    @pytest.mark.parametrize("dtype", FLOAT_DTYPES, ids=lambda d: np.dtype(d).name)
    def test_add_scan_matches_sequential_exactly(self, machine, rng, dtype):
        """The parallel scan re-associates additions, so results can differ
        from sequential cumsum in the last ulps — but for exactly
        representable inputs (small integers) it must match bit-for-bit."""
        data = rng.integers(0, 100, (4, 2048)).astype(dtype)
        result = scan(data, topology=machine, proposal="mps", W=4, V=4)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=-1, dtype=dtype))

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES, ids=lambda d: np.dtype(d).name)
    def test_add_scan_random_floats_close(self, machine, rng, dtype):
        data = rng.normal(0, 1, (2, 4096)).astype(dtype)
        result = scan(data, topology=machine, proposal="sp")
        # The parallel scan re-associates floating additions; tolerances
        # cover the accumulated rounding drift at 4096 terms.
        rtol, atol = (1e-4, 1e-3) if dtype == np.float32 else (1e-12, 1e-12)
        np.testing.assert_allclose(
            result.output, np.cumsum(data, axis=-1, dtype=dtype), rtol=rtol, atol=atol
        )

    def test_float_max_scan(self, machine, rng):
        data = rng.normal(0, 10, (2, 1024)).astype(np.float64)
        result = scan(data, topology=machine, proposal="sp", operator="max")
        np.testing.assert_array_equal(result.output, np.maximum.accumulate(data, axis=-1))


class TestPremise2DtypeAdaptation:
    def test_wider_elements_reduce_p(self):
        """int64 elements occupy two register words, halving P's budget."""
        p32 = premise2_p(64, np.int32)
        p64 = premise2_p(64, np.int64)
        assert p64 < p32

    def test_float32_matches_int32_register_cost(self):
        assert premise2_p(64, np.float32) == premise2_p(64, np.int32)

    def test_plans_adapt_to_dtype(self, machine):
        sp = ScanSP(machine.gpus[0])
        p32 = sp.plan_for(ProblemConfig.from_sizes(N=1 << 16, dtype=np.int32))
        p64 = sp.plan_for(ProblemConfig.from_sizes(N=1 << 16, dtype=np.int64))
        assert p64.stage1.params.P < p32.stage1.params.P
