"""Occupancy calculator tests, including the exact Table 3 reproduction."""

import pytest

from repro.errors import LaunchError
from repro.gpusim.arch import KEPLER_K80, MAXWELL_GM200
from repro.gpusim.occupancy import (
    achievable_blocks_ignoring_regs_smem,
    max_regs_for_full_blocks,
    max_smem_for_full_blocks,
    occupancy,
)

#: The six rows of the paper's Table 3 (cc 3.7):
#: warps/block, regs/thread, smem/block, occupancy %, blocks/SM.
TABLE3 = [
    (1, 256, 7168, 25, 16),
    (2, 128, 7168, 50, 16),
    (4, 64, 7168, 100, 16),
    (8, 64, 14336, 100, 8),
    (16, 64, 28672, 100, 4),
    (32, 64, 49152, 100, 2),
]


class TestTable3:
    @pytest.mark.parametrize("warps,regs,smem,occ_pct,blocks", TABLE3)
    def test_budget_columns(self, warps, regs, smem, occ_pct, blocks):
        target = achievable_blocks_ignoring_regs_smem(KEPLER_K80, warps)
        assert target == blocks
        assert max_regs_for_full_blocks(KEPLER_K80, warps, target_blocks=target) == regs
        assert max_smem_for_full_blocks(KEPLER_K80, target_blocks=target) == smem

    @pytest.mark.parametrize("warps,regs,smem,occ_pct,blocks", TABLE3)
    def test_residency_outcome(self, warps, regs, smem, occ_pct, blocks):
        # Row 1 quotes a 256-register budget on a 255-register architecture;
        # clamp for the launch check (the budget itself is tested above).
        result = occupancy(
            KEPLER_K80,
            warps_per_block=warps,
            regs_per_thread=min(regs, KEPLER_K80.max_registers_per_thread),
            smem_per_block=smem,
        )
        assert result.blocks_per_sm == blocks
        assert round(result.warp_occupancy * 100) == occ_pct


class TestOccupancyMechanics:
    def test_register_limited(self):
        result = occupancy(KEPLER_K80, warps_per_block=4, regs_per_thread=255, smem_per_block=0)
        assert result.limiter == "registers"
        # 255 regs * 128 threads rounds up to 32768 regs/block -> 4 blocks.
        assert result.blocks_per_sm == 4

    def test_smem_limited(self):
        result = occupancy(KEPLER_K80, warps_per_block=4, regs_per_thread=32, smem_per_block=49152)
        assert result.limiter == "shared_memory"
        assert result.blocks_per_sm == 2

    def test_thread_limited(self):
        result = occupancy(KEPLER_K80, warps_per_block=32, regs_per_thread=32, smem_per_block=0)
        assert result.blocks_per_sm == 2
        assert result.limiter in ("blocks", "threads")

    def test_full_occupancy_flag(self):
        result = occupancy(KEPLER_K80, warps_per_block=4, regs_per_thread=64, smem_per_block=7168)
        assert result.full_warp_occupancy

    def test_zero_smem_allowed(self):
        result = occupancy(KEPLER_K80, warps_per_block=4, regs_per_thread=32, smem_per_block=0)
        assert result.blocks_per_sm == KEPLER_K80.max_blocks_per_sm

    def test_maxwell_differs(self):
        result = occupancy(MAXWELL_GM200, warps_per_block=2, regs_per_thread=32, smem_per_block=0)
        assert result.blocks_per_sm == 32
        assert result.full_warp_occupancy


class TestLaunchValidation:
    def test_too_many_registers(self):
        with pytest.raises(LaunchError, match="architectural"):
            occupancy(KEPLER_K80, warps_per_block=1, regs_per_thread=300, smem_per_block=0)

    def test_too_much_smem(self):
        with pytest.raises(LaunchError, match="per-block"):
            occupancy(KEPLER_K80, warps_per_block=1, regs_per_thread=32, smem_per_block=100000)

    def test_zero_warps(self):
        with pytest.raises(LaunchError):
            occupancy(KEPLER_K80, warps_per_block=0, regs_per_thread=32, smem_per_block=0)

    def test_zero_regs(self):
        with pytest.raises(LaunchError):
            occupancy(KEPLER_K80, warps_per_block=1, regs_per_thread=0, smem_per_block=0)

    def test_negative_smem(self):
        with pytest.raises(LaunchError):
            occupancy(KEPLER_K80, warps_per_block=1, regs_per_thread=32, smem_per_block=-1)
