"""Regression tests for extreme Stage-2 block shapes.

A batch with tiny problems and large G packs many problem rows into each
Stage-2 block (Ly^2 large, Lx^2 tiny) — the configuration Section 3.1
introduces Ly^2 > 1 for. The row-level core's shared-memory exponent must
shrink with the row (regression: S <= P*L violated for Lx^2 = 1 rows).
"""

import numpy as np
import pytest

from repro import scan
from repro.core.kernels import _stage2_row_params
from repro.core.params import KernelParams, ProblemConfig
from repro.core.plan import build_execution_plan
from repro.gpusim.arch import KEPLER_K80


class TestStage2RowParams:
    def test_tiny_row_caps_s(self):
        kp2 = KernelParams(s=2, p=0, l=7, lx=0, ly=7, K=1)
        row = _stage2_row_params(kp2)
        assert row.S <= row.P * row.L

    def test_full_row_keeps_s(self):
        kp2 = KernelParams(s=2, p=3, l=7, lx=7, ly=0, K=1)
        row = _stage2_row_params(kp2)
        assert row.s == 2


class TestManyTinyProblems:
    @pytest.mark.parametrize("n,g", [(5, 10), (6, 8), (9, 7), (4, 6)])
    def test_small_n_large_g(self, machine, rng, n, g):
        """Regression: exercised via scan_ragged's small padded groups."""
        data = rng.integers(0, 100, (1 << g, 1 << n)).astype(np.int32)
        result = scan(data, topology=machine, proposal="sp")
        np.testing.assert_array_equal(
            result.output, np.cumsum(data, axis=1, dtype=np.int32)
        )

    def test_stage2_packs_maximally(self):
        problem = ProblemConfig.from_sizes(N=1 << 10, G=1 << 10)
        plan = build_execution_plan(KEPLER_K80, problem, K=1)
        # Every chunk array is a single element: the whole block capacity
        # goes to problem-packing.
        assert plan.chunks_total == 1
        assert plan.stage2.params.Ly == plan.stage2.params.L
        # ... and the launch geometry still covers all problems exactly.
        assert plan.stage2.by * plan.stage2.params.Ly == problem.G
