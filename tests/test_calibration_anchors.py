"""Machine-checked calibration anchors (the EXPERIMENTS.md contract)."""

import pytest

from repro.bench.calibration import (
    FIGURE12_ANCHORS,
    check_all_anchors,
    format_anchor_report,
    measure_anchor,
)
from repro.interconnect.topology import tsubame_kfc


@pytest.fixture(scope="module")
def machine():
    return tsubame_kfc()


class TestAnchors:
    def test_every_anchor_within_window(self, machine):
        rows = check_all_anchors(machine)
        report = format_anchor_report(rows)
        failing = [r for r in rows if not r["ok"]]
        assert not failing, f"anchors out of window:\n{report}"

    def test_endpoint_anchors_tight(self, machine):
        """The fitted endpoints should sit within 15% of the paper, not
        merely inside the generous window."""
        for anchor in FIGURE12_ANCHORS:
            measured = measure_anchor(anchor, machine)
            ratio = measured / anchor.paper_speedup
            assert 0.85 < ratio < 1.2, (anchor.library, anchor.n, measured)

    def test_report_renders(self, machine):
        text = format_anchor_report(check_all_anchors(machine))
        assert "lightscan" in text and "yes" in text
