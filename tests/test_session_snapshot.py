"""Tests for session snapshot/restore: zero-warmup, bit-identical serving.

The acceptance contract of the persistence layer: a session restored from
a snapshot onto a matching machine must replay the differential suite
**bit-identically** with **zero** plan-resolver misses and **zero** tuner
sweeps — and any mismatch (schema version, architecture, cost
fingerprint, damaged file) must degrade to a cold start, never to a stale
plan or a crash.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.executor import PlanResolver, ScanExecutor
from repro.core.session import ScanSession
from repro.core.store import SessionSnapshot
from repro.interconnect.topology import tsubame_kfc
from repro.interconnect.transfer import TransferCostParams
from repro.primitives.sequential import inclusive_scan

#: Every registered proposal on a legal placement (mirrors the
#: differential suite), served through the session.
PROPOSALS = [
    ("sp", {}, 1),
    ("pp", {"W": 4}, 1),
    ("mps", {"W": 4, "V": 4}, 1),
    ("mppc", {"W": 8, "V": 4}, 1),
    ("mn-mps", {"W": 4, "V": 4, "M": 2}, 2),
    ("chained", {}, 1),
    ("sp-dlb", {}, 1),
    ("auto", {}, 1),
    ("auto", {"W": 4, "V": 4}, 1),
]


def _pooled(nodes: int):
    topology = tsubame_kfc(nodes)
    topology.enable_buffer_pooling()
    return topology


def _serve_all(session, rng_seed=3, k="tune"):
    """Serve every proposal/placement; returns results keyed by case."""
    rng = np.random.default_rng(rng_seed)
    out = {}
    for proposal, kwargs, _ in PROPOSALS:
        data = rng.integers(-40, 90, (4, 1 << 12)).astype(np.int32)
        result = session.scan(data, proposal=proposal, K=k, **kwargs)
        np.testing.assert_array_equal(
            result.output, inclusive_scan(data, axis=-1)
        )
        out[(proposal, tuple(sorted(kwargs.items())))] = result
    return out


class TestRoundTrip:
    def test_all_proposals_bit_identical_zero_misses(self, fresh_resolver):
        """The headline acceptance test: restore -> replay the full
        proposal matrix -> identical traces, 0 resolver misses, 0 sweeps."""
        nodes = max(n for _, _, n in PROPOSALS)
        cold = ScanSession(_pooled(nodes))
        cold_results = _serve_all(cold)
        snapshot = cold.snapshot()

        ScanExecutor.resolver = restored_resolver = PlanResolver()
        warm = ScanSession.restore(snapshot, _pooled(nodes))
        info = warm.restore_info
        assert info["compatible"], info
        # "auto" resolves to a concrete proposal, so the two auto cases
        # alias explicit entries — the restored count matches the cold
        # session's de-duplicated cache exactly.
        assert info["entries"] == cold.cached_configurations
        warm_results = _serve_all(warm)

        assert restored_resolver.misses == 0
        assert warm.tuner.cache.misses == 0
        assert warm.misses == 0 and warm.hits == len(PROPOSALS)
        for key, cold_result in cold_results.items():
            warm_result = warm_results[key]
            assert warm_result.total_time_s == cold_result.total_time_s, key
            assert warm_result.proposal == cold_result.proposal, key
            np.testing.assert_array_equal(
                warm_result.output, cold_result.output
            )

    @given(
        n=st.integers(min_value=10, max_value=15),
        g=st.integers(min_value=0, max_value=4),
        case=st.integers(min_value=0, max_value=len(PROPOSALS) - 1),
        operator=st.sampled_from(["add", "max", "mul"]),
        tune=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_restore_is_bit_identical(self, n, g, case, operator,
                                               tune):
        """Property form: for any shape/operator/proposal (including
        sp-dlb and "auto") a restored session reproduces the cold trace
        bit-identically without re-planning or re-tuning."""
        proposal, kwargs, nodes = PROPOSALS[case]
        if operator == "mul":
            data = np.random.default_rng(n + g).integers(
                1, 3, (1 << g, 1 << n)).astype(np.int64)
        else:
            data = np.random.default_rng(n + g).integers(
                -40, 90, (1 << g, 1 << n)).astype(np.int64)
        k = "tune" if tune else None

        original = ScanExecutor.resolver
        try:
            ScanExecutor.resolver = PlanResolver()
            cold = ScanSession(_pooled(nodes))
            cold_result = cold.scan(data, proposal=proposal, K=k,
                                    operator=operator, **kwargs)
            snapshot = cold.snapshot()

            ScanExecutor.resolver = resolver = PlanResolver()
            warm = ScanSession.restore(snapshot, _pooled(nodes))
            assert warm.restore_info["compatible"], warm.restore_info
            warm_result = warm.scan(data, proposal=proposal, K=k,
                                    operator=operator, **kwargs)

            assert resolver.misses == 0
            assert warm.tuner.cache.misses == 0
            assert warm.misses == 0 and warm.hits == 1
            assert warm_result.total_time_s == cold_result.total_time_s
            assert warm_result.proposal == cold_result.proposal
            np.testing.assert_array_equal(
                warm_result.output, cold_result.output
            )
        finally:
            ScanExecutor.resolver = original

    def test_snapshot_counts_cached_configurations(self, fresh_resolver):
        session = ScanSession(_pooled(2))
        _serve_all(session)
        snapshot = session.snapshot()
        assert snapshot.counts["session_entries"] == \
            session.cached_configurations
        warm = ScanSession.restore(snapshot, _pooled(2))
        assert warm.cached_configurations == session.cached_configurations

    def test_pool_warm_hints_restored(self, fresh_resolver):
        session = ScanSession(_pooled(2))
        _serve_all(session)
        parked = [gpu.buffer_pool.warm_hints()
                  for gpu in session.topology.gpus]
        assert any(parked)

        warm = ScanSession.restore(session.snapshot(), _pooled(2))
        assert warm.restore_info["pool_blocks"] > 0
        restored = [gpu.buffer_pool.warm_hints()
                    for gpu in warm.topology.gpus]
        assert restored == parked
        # Preloaded blocks are warm state, not served traffic.
        assert all(gpu.buffer_pool.hits == 0 and gpu.buffer_pool.misses == 0
                   for gpu in warm.topology.gpus)


class TestCompatibilityFallback:
    def _snapshot(self, resolver):
        session = ScanSession(_pooled(1))
        rng = np.random.default_rng(0)
        session.scan(rng.integers(0, 9, (4, 1 << 12)).astype(np.int32),
                     proposal="auto", K="tune")
        return session.snapshot()

    def test_wrong_schema_falls_back_to_cold(self, fresh_resolver):
        snapshot = self._snapshot(fresh_resolver)
        snapshot.schema = 999
        warm = ScanSession.restore(snapshot, _pooled(1))
        info = warm.restore_info
        assert not info["compatible"] and "schema" in info["reason"]
        assert warm.cached_configurations == 0
        # Cold serving still works.
        rng = np.random.default_rng(0)
        data = rng.integers(0, 9, (4, 1 << 12)).astype(np.int32)
        result = warm.scan(data, proposal="auto", K="tune")
        np.testing.assert_array_equal(
            result.output, inclusive_scan(data, axis=-1)
        )

    def test_mismatched_fingerprint_falls_back_to_replanning(
        self, fresh_resolver
    ):
        """The forward-compat satellite: repricing the interconnect
        changes the PR-4 cost fingerprint, so yesterday's snapshot must
        not prime today's machine."""
        snapshot = self._snapshot(fresh_resolver)
        repriced = _pooled(1)
        repriced.transfer_params = TransferCostParams(p2p_bandwidth_gbs=25.0)
        warm = ScanSession.restore(snapshot, repriced)
        info = warm.restore_info
        assert not info["compatible"] and "fingerprint" in info["reason"]
        assert warm.cached_configurations == 0
        assert warm.tuner.cache.hits == 0

    def test_degraded_machine_refuses_healthy_snapshot(self, fresh_resolver):
        snapshot = self._snapshot(fresh_resolver)
        degraded = _pooled(1)
        degraded.ensure_health()
        degraded.mark_offline(0)
        warm = ScanSession.restore(snapshot, degraded)
        assert not warm.restore_info["compatible"]

    def test_corrupt_snapshot_file_falls_back_to_cold(self, tmp_path,
                                                      fresh_resolver):
        path = tmp_path / "snap.json"
        path.write_text("{broken")
        session = ScanSession(_pooled(1), snapshot=path)
        info = session.restore_info
        assert not info["compatible"] and "unreadable" in info["reason"]
        rng = np.random.default_rng(0)
        data = rng.integers(0, 9, (4, 1 << 12)).astype(np.int32)
        result = session.scan(data)
        np.testing.assert_array_equal(
            result.output, inclusive_scan(data, axis=-1)
        )

    def test_stale_session_entry_skipped_not_fatal(self, fresh_resolver):
        """A snapshot entry naming a removed proposal re-plans instead of
        failing the restore."""
        snapshot = self._snapshot(fresh_resolver)
        payload = snapshot.to_payload()
        payload["entries"] = [dict(payload["entries"][0],
                                   proposal="teleport")] + payload["entries"]
        warm = ScanSession(_pooled(1), snapshot=payload)
        info = warm.restore_info
        assert info["compatible"]
        assert info["skipped_entries"] == 1

    def test_snapshot_payload_dict_accepted(self, fresh_resolver):
        snapshot = self._snapshot(fresh_resolver)
        payload = json.loads(json.dumps(snapshot.to_payload()))
        warm = ScanSession(_pooled(1), snapshot=payload)
        assert warm.restore_info["compatible"]


class TestServiceSnapshot:
    def test_service_accepts_snapshot(self, fresh_resolver):
        from repro.serve import poisson_workload, replay
        from repro.serve.service import ScanService

        workload = poisson_workload(16, sizes_log2=(12,), rate=1e5, seed=5)
        cold_session = ScanSession(_pooled(1))
        cold_service = ScanService(session=cold_session, max_batch=8,
                                   K="tune")
        cold_stats = replay(cold_service, workload)
        snapshot = cold_session.snapshot()

        ScanExecutor.resolver = resolver = PlanResolver()
        warm_service = ScanService(topology=_pooled(1), max_batch=8,
                                   K="tune", snapshot=snapshot)
        assert warm_service.session.restore_info["compatible"]
        warm_stats = replay(warm_service, workload)

        assert resolver.misses == 0
        assert warm_service.session.tuner.cache.misses == 0
        assert warm_stats["verified"] == cold_stats["verified"] == 16
        assert [b.sim_time_s for b in warm_service.batches] == \
            [b.sim_time_s for b in cold_service.batches]

    def test_service_applies_snapshot_to_existing_session(
        self, fresh_resolver
    ):
        from repro.serve.service import ScanService

        cold = ScanSession(_pooled(1))
        rng = np.random.default_rng(0)
        cold.scan(rng.integers(0, 9, (4, 1 << 12)).astype(np.int32))
        snapshot = cold.snapshot()

        session = ScanSession(_pooled(1))
        ScanService(session=session, snapshot=snapshot)
        assert session.restore_info["compatible"]
        assert session.cached_configurations == cold.cached_configurations
