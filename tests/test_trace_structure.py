"""Structural assertions on the traces every proposal produces.

These tests pin *where* work happens, not just how long it takes: which
lanes carry which phases, which GPU runs Stage 2, which routes the
auxiliary traffic takes — the observable form of the paper's Figures 7/8
data-flow diagrams.
"""

import numpy as np
import pytest

from repro.core.multi_gpu import ScanMPS
from repro.core.multi_node import ScanMultiNodeMPS
from repro.core.params import NodeConfig
from repro.core.prioritized import ScanMPPC
from repro.gpusim.events import KernelRecord, MPIRecord, TransferRecord


def records_in(trace, phase, cls):
    return [r for r in trace.records if r.phase == phase and isinstance(r, cls)]


class TestMPSStructure:
    @pytest.fixture
    def result(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        return ScanMPS(machine, NodeConfig.from_counts(W=4, V=4)).run(data)

    def test_stage1_runs_on_every_gpu(self, result):
        kernels = records_in(result.trace, "stage1", KernelRecord)
        assert sorted(k.gpu_id for k in kernels) == [0, 1, 2, 3]

    def test_stage2_runs_on_master_only(self, result):
        kernels = records_in(result.trace, "stage2", KernelRecord)
        assert [k.gpu_id for k in kernels] == [0]

    def test_gather_targets_master(self, result):
        copies = [r for r in records_in(result.trace, "aux_gather", TransferRecord)
                  if r.kind != "dispatch"]
        assert len(copies) == 3  # W-1 senders
        assert all(c.dst_gpu == 0 for c in copies)
        assert all(c.kind == "p2p" for c in copies)

    def test_scatter_mirrors_gather(self, result):
        gathers = [r for r in records_in(result.trace, "aux_gather", TransferRecord)
                   if r.kind != "dispatch"]
        scatters = [r for r in records_in(result.trace, "aux_scatter", TransferRecord)
                    if r.kind != "dispatch"]
        assert {(g.src_gpu, g.dst_gpu) for g in gathers} == {
            (s.dst_gpu, s.src_gpu) for s in scatters
        }
        assert sum(g.nbytes for g in gathers) == sum(s.nbytes for s in scatters)

    def test_dispatch_ordinals_grow(self, result):
        dispatches = [
            r for r in result.trace.records
            if isinstance(r, TransferRecord) and r.kind == "dispatch"
            and r.phase == "stage1"
        ]
        times = [d.time_s for d in dispatches]
        assert times == sorted(times)
        assert len(dispatches) == 4


class TestMPPCStructure:
    def test_two_independent_masters(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        result = ScanMPPC(machine, NodeConfig.from_counts(W=8, V=4)).run(data)
        stage2 = records_in(result.trace, "stage2", KernelRecord)
        # One Stage-2 master per PCIe network: GPUs 0 and 4.
        assert sorted(k.gpu_id for k in stage2) == [0, 4]

    def test_traffic_stays_in_network(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        result = ScanMPPC(machine, NodeConfig.from_counts(W=8, V=4)).run(data)
        for rec in result.trace.transfer_records():
            if rec.kind == "dispatch":
                continue
            assert machine.p2p_capable(rec.src_gpu, rec.dst_gpu)


class TestMultiNodeStructure:
    @pytest.fixture
    def result(self, cluster, rng):
        data = rng.integers(0, 100, (4, 1 << 14)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        return ScanMultiNodeMPS(cluster, node).run(data)

    def test_stage1_on_all_eight_ranks(self, result):
        kernels = records_in(result.trace, "stage1", KernelRecord)
        assert len(kernels) == 8
        assert len({k.gpu_id for k in kernels}) == 8

    def test_stage2_on_global_master(self, result):
        kernels = records_in(result.trace, "stage2", KernelRecord)
        assert [k.gpu_id for k in kernels] == [0]

    def test_gather_has_one_ib_leg(self, result):
        """Hierarchical gather: the remote node aggregates into ONE
        InfiniBand message."""
        legs = records_in(result.trace, "mpi_gather", MPIRecord)
        ib = [l for l in legs if l.lane == "ib"]
        assert len(ib) == 1

    def test_barrier_before_gather(self, result):
        phases = result.trace.phases()
        assert phases.index("mpi_barrier") < phases.index("mpi_gather")

    def test_no_direct_cross_node_pcie(self, result):
        for rec in result.trace.transfer_records():
            if rec.kind in ("p2p", "host_staged"):
                # PCIe copies never cross nodes; that is MPI's job.
                assert rec.src_gpu // 8 == rec.dst_gpu // 8
