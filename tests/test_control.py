"""Feedback controllers: decision functions, determinism, A/B harness.

Three layers:

- unit tests for each controller's *pure decision function* — hysteresis
  edges (the dead band between the watermarks), step bounds (ceiling and
  baseline floor), cooldown, rate-estimator edge cases;
- integration tests driving controllers through a real
  :class:`~repro.serve.service.ScanService` on the simulated clock —
  burst traffic grows the knobs and calm traffic walks them home,
  health degradation re-tunes and recovery restores the cached plan,
  in-place repricing triggers a recalibration reset;
- a hypothesis property: same workload + seed implies a bit-identical
  decision log *and* bit-identical ticket latencies across two replays —
  the tentpole's determinism contract, randomised over workload shapes.
"""

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.control import (
    CalibrationController,
    CalibrationControllerConfig,
    ControllerGroup,
    ServiceController,
    ServiceControllerConfig,
    TuneController,
    adaptive_controller,
    run_ab,
)
from repro.control.ab import DEFAULT_AB_PARAMS
from repro.core.autotune_cache import cost_fingerprint
from repro.core.session import ScanSession
from repro.gpusim.faults import DeviceDown, FaultSchedule
from repro.interconnect.topology import tsubame_kfc
from repro.serve.replay import bursty_workload, poisson_workload, replay

CONFIG = ServiceControllerConfig(
    high_rate=1e5, low_rate=1e4, batch_step=2, wait_step=2.0,
    batch_ceiling=32, wait_ceiling_s=8e-4, cooldown_s=1e-5,
    window=8, min_samples=4,
)


def decide(now_s=1.0, rate=0.0, burn=0.0, max_batch=4, max_wait_s=1e-4,
           baseline_batch=4, baseline_wait_s=1e-4,
           last_decision_s=-math.inf, config=CONFIG):
    return ServiceController.decide(
        now_s, rate, burn, max_batch, max_wait_s,
        baseline_batch, baseline_wait_s, last_decision_s, config,
    )


class TestServiceDecide:
    """The batching controller's pure decision function."""

    def test_scale_up_above_high_watermark(self):
        assert decide(rate=CONFIG.high_rate) == ("scale_up", 8, 2e-4)

    def test_scale_down_below_low_watermark(self):
        assert decide(rate=CONFIG.low_rate, max_batch=16, max_wait_s=4e-4) \
            == ("scale_down", 8, 2e-4)

    def test_dead_band_holds(self):
        # Hysteresis: between the watermarks nothing moves, in either
        # direction — this is what stops the knobs chattering.
        mid = (CONFIG.low_rate + CONFIG.high_rate) / 2
        assert decide(rate=mid) is None
        assert decide(rate=mid, max_batch=16, max_wait_s=4e-4) is None

    def test_watermark_edges(self):
        # The comparisons are inclusive at high_rate and low_rate.
        assert decide(rate=CONFIG.high_rate)[0] == "scale_up"
        assert decide(rate=math.nextafter(CONFIG.high_rate, 0.0)) is None
        assert decide(rate=CONFIG.low_rate, max_batch=8)[0] == "scale_down"
        assert decide(rate=math.nextafter(CONFIG.low_rate, math.inf),
                      max_batch=8) is None

    def test_burn_accelerates_scale_up_inside_dead_band(self):
        mid = (CONFIG.low_rate + CONFIG.high_rate) / 2
        verdict = decide(rate=mid, burn=CONFIG.burn_hot)
        assert verdict is not None and verdict[0] == "scale_up"
        # ...but not below the low watermark: burn on idle traffic is
        # history, not pressure.
        assert decide(rate=CONFIG.low_rate, burn=CONFIG.burn_hot) is None

    def test_step_bounds_ceiling(self):
        action, batch, wait = decide(rate=math.inf, max_batch=24,
                                     max_wait_s=6e-4)
        assert action == "scale_up"
        assert batch == CONFIG.batch_ceiling
        assert wait == CONFIG.wait_ceiling_s

    def test_at_ceiling_returns_none(self):
        assert decide(rate=math.inf, max_batch=CONFIG.batch_ceiling,
                      max_wait_s=CONFIG.wait_ceiling_s) is None

    def test_step_bounds_baseline_floor(self):
        action, batch, wait = decide(rate=0.0, max_batch=6, max_wait_s=1.5e-4)
        assert action == "scale_down"
        assert batch == 4 and wait == 1e-4  # never below the baseline

    def test_at_baseline_returns_none(self):
        assert decide(rate=0.0) is None

    def test_cooldown_blocks_both_directions(self):
        last = 1.0 - CONFIG.cooldown_s / 2
        assert decide(rate=math.inf, last_decision_s=last) is None
        assert decide(rate=0.0, max_batch=8, last_decision_s=last) is None
        # Once the cooldown has elapsed the decision goes through again.
        assert decide(rate=math.inf,
                      last_decision_s=1.0 - 2 * CONFIG.cooldown_s) is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceControllerConfig(high_rate=1e4, low_rate=1e4)
        with pytest.raises(ValueError):
            ServiceControllerConfig(batch_step=1)
        with pytest.raises(ValueError):
            ServiceControllerConfig(min_samples=1)


class TestObservedRate:
    def test_quiet_below_min_samples(self):
        ctrl = ServiceController(CONFIG)
        for t in (0.0, 1e-5, 2e-5):
            ctrl._arrivals.append(t)
        assert ctrl.observed_rate() == 0.0

    def test_pure_burst_is_infinite(self):
        ctrl = ServiceController(CONFIG)
        for _ in range(CONFIG.min_samples):
            ctrl._arrivals.append(0.5)
        assert ctrl.observed_rate() == math.inf

    def test_window_rate(self):
        ctrl = ServiceController(CONFIG)
        for i in range(4):
            ctrl._arrivals.append(i * 1e-3)
        assert ctrl.observed_rate() == pytest.approx(1e3)


def _service(topology=None, controller=None, **kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_s", 1e-4)
    session = ScanSession(topology or tsubame_kfc(1))
    return session.service(controller=controller, **kwargs)


def _feed(service, requests, rate, seed=3, n_log2=12):
    workload = poisson_workload(requests, sizes_log2=(n_log2,), rate=rate,
                                seed=seed)
    # The serving clock is monotonic: repeated feeds on one service must
    # schedule their arrivals after everything already served.
    offset = service.clock.now
    if offset > 0.0:
        workload = [dataclasses.replace(r, at_s=r.at_s + offset)
                    for r in workload]
    return replay(service, workload)


class TestServiceControllerIntegration:
    def test_burst_grows_knobs_then_calm_restores_baseline(self):
        # One schedule, burst first then a long calm tail (the service
        # clock is monotonic, so phases must share one workload).
        ctrl = ServiceController(CONFIG)
        service = _service(controller=ctrl)
        workload = bursty_workload(64, base_rate=2e3, burst_rate=1e6,
                                   burst_every=64, burst_len=16, seed=3)
        stats = replay(service, workload)
        assert stats["verified"] == 64
        ups = [d for d in ctrl.decisions if d.action == "scale_up"]
        assert ups and ups[0].before == {"max_batch": 4, "max_wait_s": 1e-4}
        assert max(d.after["max_batch"] for d in ups) > 4
        # The calm tail walked everything back down to the static floor.
        assert any(d.action == "scale_down" for d in ctrl.decisions)
        assert service.max_batch == 4
        assert service.max_wait_s == 1e-4

    def test_steady_traffic_never_departs_baseline(self):
        ctrl = ServiceController(CONFIG)
        service = _service(controller=ctrl)
        stats = _feed(service, 64, rate=2e3)
        assert stats["verified"] == 64
        assert ctrl.decisions == []
        assert service.max_batch == 4 and service.max_wait_s == 1e-4

    def test_decisions_surface_in_stats(self):
        ctrl = ServiceController(CONFIG)
        service = _service(controller=ctrl)
        _feed(service, 32, rate=1e6)
        snap = service.stats()["control"]
        assert snap["name"] == "service"
        assert snap["decisions"] == len(ctrl.decisions) > 0


class TestControllerGroup:
    def test_children_share_one_interleaved_log(self):
        a, b = ServiceController(CONFIG), TuneController()
        group = ControllerGroup([a, b])
        assert a.decisions is group.decisions
        assert b.decisions is group.decisions
        a.record(0.0, "x", "r", {}, {})
        b.record(1.0, "y", "r", {}, {})
        assert [d.action for d in group.decisions] == ["x", "y"]
        snap = group.snapshot()
        assert snap["decisions"] == 2
        assert [c["name"] for c in snap["controllers"]] == ["service", "tune"]


class TestTuneController:
    def test_degrade_retunes_and_recovery_restores_cached_plan(self):
        # rate=0 feeds: every request at one instant, so batches flush by
        # size into one uniform warmed shape (no deadline-flush shapes
        # that would need a fresh sweep right as the fault fires). The
        # health state is created up front so installing the fault
        # schedule later does not itself shift the cost fingerprint.
        topology = tsubame_kfc(1)
        topology.ensure_health()
        ctrl = TuneController()
        service = _service(topology=topology, controller=ctrl)
        _feed(service, 8, rate=0)             # warm: hot keys + tuner cache
        healthy_fingerprint = cost_fingerprint(topology)
        assert ctrl._hot                      # shapes remembered

        # Degrade: device loss mid-batch -> failover -> health epoch bump
        # -> the batch boundary re-tunes under the degraded fingerprint.
        topology.install_faults(FaultSchedule([DeviceDown(at_call=1,
                                                          gpu_id=0)]))
        _feed(service, 8, rate=0, seed=7)
        retunes = [d for d in ctrl.decisions if d.action == "retune"]
        assert retunes, [d.action for d in ctrl.decisions]
        assert cost_fingerprint(topology) != healthy_fingerprint

        # Recover: the fingerprint reverts to the known healthy value;
        # the controller bumps the epoch once ("restore") and the
        # rebuilt entries come from the warm tuner cache — zero sweeps.
        topology.clear_faults()
        topology.ensure_health()  # same empty snapshot as the warm phase
        epoch_before = service.session.health.epoch
        sweeps_before = service.session.tuner.cache.misses
        _feed(service, 8, rate=0, seed=9)
        restores = [d for d in ctrl.decisions if d.action == "restore"]
        assert restores, [d.action for d in ctrl.decisions]
        assert service.session.health.epoch > epoch_before
        assert service.session.tuner.cache.misses == sweeps_before
        assert restores[0].after["fingerprint"] == healthy_fingerprint

    def test_healthy_machine_never_decides(self):
        ctrl = TuneController()
        service = _service(controller=ctrl)
        _feed(service, 16, rate=0)
        assert ctrl.decisions == []


def _reprice(topology, factor=8.0):
    """Mutate the cost params in place — the documented reset-worthy sin."""
    for gpu in topology.gpus:
        p = gpu.cost_model.params
        gpu.cost_model.params = dataclasses.replace(
            p,
            int_ops_per_sm_per_cycle=p.int_ops_per_sm_per_cycle / factor,
            min_latency_hiding=1.0,
            occupancy_saturation=1e-9,
        )


class TestCalibrationController:
    CONFIG = CalibrationControllerConfig(refit_every=4, min_kernels=4,
                                         tolerance=0.05)

    def test_stable_machine_only_fits_reference(self):
        ctrl = CalibrationController(self.CONFIG)
        service = _service(controller=ctrl)
        _feed(service, 32, rate=0)
        actions = [d.action for d in ctrl.decisions]
        assert actions.count("fit") == 1
        assert "recalibrate" not in actions

    def test_inplace_repricing_triggers_reset(self):
        topology = tsubame_kfc(1)
        ctrl = CalibrationController(self.CONFIG)
        service = _service(topology=topology, controller=ctrl)
        session = service.session
        _feed(service, 16, rate=0)
        assert [d.action for d in ctrl.decisions] == ["fit"]
        reference = dict(ctrl.reference)

        _reprice(topology)
        resets_before = session.tuner.cache.misses
        _feed(service, 16, rate=0, seed=11)
        recals = [d for d in ctrl.decisions if d.action == "recalibrate"]
        assert len(recals) == 1, [d.action for d in ctrl.decisions]
        # The reset rebased the whole reference baseline: only the
        # drifted shape remains, re-referenced under the new pricing.
        assert set(ctrl.reference) == {recals[0].after["shape"]}
        assert ctrl.reference != reference
        assert recals[0].after["fingerprint"]
        # The refit window fills at this feed's final batch, so the
        # session.reset() it triggered is the last thing that happened:
        # the plan-cache counters sit freshly zeroed.
        assert session.hits + session.misses == 0
        assert session.cached_configurations == 0
        assert session.tuner.cache.misses >= resets_before

    def test_short_window_is_not_fit_worthy(self):
        ctrl = CalibrationController(CalibrationControllerConfig(
            refit_every=1, min_kernels=100, tolerance=0.05))
        service = _service(controller=ctrl)
        _feed(service, 8, rate=0)
        assert ctrl.decisions == []


class TestDeterminismProperty:
    """Same workload + seed => bit-identical decisions and latencies."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        requests=st.integers(min_value=12, max_value=40),
        burst_rate=st.sampled_from([2e5, 1e6, 5e6]),
        burst_len=st.integers(min_value=4, max_value=12),
    )
    @settings(max_examples=8, deadline=None)
    def test_two_replays_are_bit_identical(self, seed, requests, burst_rate,
                                           burst_len):
        def run():
            service = _service(controller=adaptive_controller(CONFIG))
            workload = bursty_workload(
                requests, base_rate=2e3, burst_rate=burst_rate,
                burst_every=burst_len * 2, burst_len=burst_len, seed=seed,
            )
            stats = replay(service, workload)
            return (
                service.controller.decision_log(),
                stats["latency"],
                stats["batch_size"],
                stats["total_exec_s"],
                [float(b.sim_time_s) for b in service.batches],
            )

        assert run() == run()


class TestABHarness:
    def test_default_ab_meets_acceptance_bars(self):
        report = run_ab(DEFAULT_AB_PARAMS, repeats=2)
        assert report["deterministic"]
        assert report["bursty"]["p99_improvement"] >= 1.3
        assert report["steady"]["p99_ratio"] <= 1.05
        # The steady adaptive arm reproduces static *exactly*: the
        # baseline floor means no knob ever moved.
        steady = report["steady"]
        assert steady["adaptive"]["batch_sim_times"] == \
            steady["static"]["batch_sim_times"]
