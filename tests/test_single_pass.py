"""The sp-dlb decoupled-lookback proposal: protocol, cost model, crossover.

Four layers:

- the :mod:`repro.gpusim.lookback` model itself (per-block read formula vs
  its closed form, stall-model properties);
- the kernel protocol (descriptor end states, execution-mode invariance,
  the association guarantee that makes float results bit-identical to the
  chained executor's);
- the cost structure (sp-dlb never beats the idealised chained bound, but
  crosses the three-kernel pipeline as N grows — per dtype and G);
- the tuner/session integration (``auto`` resolves through the memoised
  variant choice; CLI and capability flags expose the proposal).

Bit-exactness against the sequential oracle lives in the differential
suite; estimate==run in ``test_executor_pipeline`` — both parametrize over
the registry, which now includes ``sp-dlb``.
"""

import numpy as np
import pytest

from repro.core.params import ProblemConfig
from repro.core.chained import ScanChained
from repro.core.single_gpu import ScanSP
from repro.core.single_pass import ScanSinglePassDLB
from repro.core.session import ScanSession
from repro.core.tuner import PremiseTuner
from repro.gpusim.kernel import ExecutionEngine
from repro.gpusim.lookback import (
    LookbackParams,
    lookback_reads_per_block,
    lookback_stall_s,
    total_lookback_reads,
)
from repro.interconnect.topology import tsubame_kfc


class TestLookbackModel:
    @pytest.mark.parametrize("grid_x,grid_y,capacity", [
        (1, 1, 208), (7, 3, 4), (100, 2, 208), (500, 1, 208), (4096, 8, 104),
    ])
    def test_closed_form_matches_per_block_sum(self, grid_x, grid_y, capacity):
        bx = np.arange(grid_x)
        per_block = lookback_reads_per_block(bx, capacity)
        assert total_lookback_reads(grid_x, grid_y, capacity) == (
            grid_y * int(per_block.sum())
        )

    def test_reads_saturate_at_capacity(self):
        """Blocks beyond the resident window pay capacity-1 aggregate reads
        plus one terminating prefix read — never more."""
        capacity = 16
        reads = lookback_reads_per_block(np.arange(100), capacity)
        assert reads[0] == 0
        assert reads[1] == 1
        assert reads[15] == 15
        assert (reads[16:] == 16).all()

    def test_stall_is_zero_for_single_block_rows(self):
        assert lookback_stall_s(8, 1, 208, 1e-6, 0.25) == 0.0

    def test_stall_saturates_with_waves(self):
        """Exposure is capped: a 10-wave grid stalls like a 2-wave grid
        (the tail hides behind streaming), so the stall cannot grow
        linearly with N and destroy the large-N win."""
        lb = LookbackParams(window=32, exposure_horizon=2)
        two_waves = lookback_stall_s(416, 416, 208, 1e-6, 0.25, lb)
        ten_waves = lookback_stall_s(2080, 2080, 208, 1e-6, 0.25, lb)
        assert two_waves > 0
        assert ten_waves == pytest.approx(two_waves)

    def test_contention_inflates_the_round_trip(self):
        calm = lookback_stall_s(416, 416, 208, 1e-6, 0.0)
        loud = lookback_stall_s(416, 416, 208, 1e-6, 0.5)
        assert loud > calm


class TestLookbackProtocol:
    def test_descriptors_end_in_prefix_state(self, machine, rng):
        """After the pass every block published its inclusive prefix (P)
        and the prefixes equal the chunk-wise scan of the chunk totals."""
        data = rng.integers(-40, 90, (2, 1 << 12)).astype(np.int64)
        executor = ScanSinglePassDLB(machine.gpus[0])
        result = executor.run(data)
        plan = executor.plan_for(
            ProblemConfig.from_sizes(N=data.shape[1], G=data.shape[0],
                                     dtype=data.dtype)
        )
        bx = plan.stage1.bx
        assert bx > 1  # the protocol actually ran a lookback
        # Reconstruct the descriptors' published prefixes from the output:
        # the inclusive prefix of block b is the scan at its last element.
        chunk = data.shape[1] // bx
        expected = result.output[:, chunk - 1::chunk]
        np.testing.assert_array_equal(
            np.cumsum(data.reshape(2, bx, chunk).sum(axis=2), axis=1), expected
        )

    def test_execution_modes_agree_bitwise(self, rng):
        """Vectorized and blockwise engines must produce identical bytes
        AND identical traces — the protocol model is schedule-independent."""
        data = rng.normal(0, 10, (4, 1 << 13)).astype(np.float64)
        results = []
        for mode in ("vectorized", "blockwise"):
            m = tsubame_kfc(1)
            m.gpus[0].engine = ExecutionEngine(mode=mode)
            results.append(ScanSinglePassDLB(m.gpus[0]).run(data))
        a, b = results
        assert (a.output == b.output).all()
        assert a.total_time_s == b.total_time_s
        assert a.breakdown == b.breakdown

    def test_float_association_matches_chained(self, machine, rng):
        """The lookback fold is the canonical chain association, so float
        results are bit-identical to the chained executor's (and the two
        share one differential-suite tolerance story)."""
        data = rng.normal(0, 10, (4, 1 << 13)).astype(np.float64)
        dlb = ScanSinglePassDLB(machine.gpus[0]).run(data)
        chained = ScanChained(machine.gpus[0]).run(data)
        assert (dlb.output == chained.output).all()

    def test_trace_shape(self, machine, rng):
        """Exactly two launches — reset + pass — against the pipeline's 3."""
        data = rng.integers(0, 100, (1, 1 << 13)).astype(np.int32)
        result = ScanSinglePassDLB(machine.gpus[0]).run(data)
        names = [r.name for r in result.trace.records]
        assert names == ["descriptor_reset", "single_pass_scan"]
        assert result.config["single_pass"] is True
        assert result.config["lookback_window"] == machine.arch.warp_size


class TestCostStructure:
    def test_never_beats_the_idealised_chained_bound(self, machine):
        """chained models the same algorithm with free descriptors and no
        stalls; honest pricing must always cost at least as much."""
        for n in (12, 16, 20, 24):
            problem = ProblemConfig.from_sizes(N=1 << n, G=1)
            dlb = ScanSinglePassDLB(machine.gpus[0]).estimate(problem)
            chained = ScanChained(machine.gpus[0]).estimate(problem)
            assert dlb.total_time_s > chained.total_time_s

    @pytest.mark.parametrize("dtype,g,small_n,large_n", [
        (np.int32, 1, 13, 23),
        (np.int32, 8, 13, 21),
        (np.int64, 8, 13, 19),
    ])
    def test_crossover_against_three_kernel(self, machine, dtype, g,
                                            small_n, large_n):
        """Small problems: fixed protocol cost loses to the pipeline.
        Large problems: the saved memory pass wins."""
        gpu = machine.gpus[0]
        small = ProblemConfig.from_sizes(N=1 << small_n, G=g, dtype=dtype)
        large = ProblemConfig.from_sizes(N=1 << large_n, G=g, dtype=dtype)
        assert (
            ScanSinglePassDLB(gpu).estimate(small).total_time_s
            > ScanSP(gpu).estimate(small).total_time_s
        )
        assert (
            ScanSinglePassDLB(gpu).estimate(large).total_time_s
            < ScanSP(gpu).estimate(large).total_time_s
        )

    def test_memory_traffic_is_two_pass_not_three(self, machine):
        """The headline claim: ~2N streamed bytes vs the pipeline's ~3N.

        The descriptor protocol honestly adds traffic on top of the 2N
        streaming floor (lookback reads scale with blocks x capacity), so
        the ratio lands between 2 and the pipeline's 3 — never at an
        idealised 2.0 exactly, and never enough to erase the saved pass.
        """
        problem = ProblemConfig.from_sizes(N=1 << 24, G=1, dtype=np.int32)
        nbytes = (1 << 24) * 4

        def moved(result):
            return sum(r.global_bytes_read + r.global_bytes_written
                       for r in result.trace.records)

        dlb = moved(ScanSinglePassDLB(machine.gpus[0]).estimate(problem))
        sp = moved(ScanSP(machine.gpus[0]).estimate(problem))
        assert sp / nbytes == pytest.approx(3.0, rel=0.05)
        assert 2.0 <= dlb / nbytes < 2.6
        assert dlb < sp


class TestVariantTuning:
    def test_tuner_picks_sp_small_and_dlb_large(self, machine):
        tuner = PremiseTuner(machine)
        small = tuner.tune_single_gpu_variant(
            ProblemConfig.from_sizes(N=1 << 13, G=1)
        )
        large = tuner.tune_single_gpu_variant(
            ProblemConfig.from_sizes(N=1 << 24, G=1)
        )
        assert small.best_proposal == "sp"
        assert large.best_proposal == "sp-dlb"
        assert {c.proposal for c in small.candidates} == {"sp", "sp-dlb"}

    def test_session_auto_serves_the_winner(self, machine, rng):
        """End to end: auto on one GPU returns sp at small N and sp-dlb at
        large N, with bit-exact output either way."""
        session = ScanSession(machine)
        small = rng.integers(-40, 90, (1, 1 << 12)).astype(np.int64)
        result = session.scan(small, proposal="auto")
        assert result.proposal == "scan-sp"
        np.testing.assert_array_equal(result.output, np.cumsum(small, axis=1))

        large = rng.integers(-40, 90, (1, 1 << 22)).astype(np.int32)
        result = session.scan(large, proposal="auto")
        assert result.proposal == "scan-sp-dlb"
        np.testing.assert_array_equal(result.output, np.cumsum(large, axis=1))

    def test_session_estimate_auto_matches_scan_auto(self, machine):
        session = ScanSession(machine)
        problem = ProblemConfig.from_sizes(N=1 << 24, G=1, dtype=np.int32)
        est = session.estimate(problem, proposal="auto")
        assert est.proposal == "scan-sp-dlb"

    def test_explicit_proposal_bypasses_the_variant_choice(self, machine, rng):
        """proposal="sp" means sp — the refinement only applies to auto."""
        session = ScanSession(machine)
        large = rng.integers(0, 9, (1, 1 << 22)).astype(np.int32)
        assert session.scan(large, proposal="sp").proposal == "scan-sp"


class TestCli:
    def test_proposals_lists_capability_flags(self, capsys):
        from repro.cli import main

        assert main(["proposals"]) == 0
        out = capsys.readouterr().out
        assert "sp-dlb" in out
        assert "2-pass" in out and "3-pass" in out
        assert "1-GPU" in out and "multi-GPU" in out
        assert "estimate" in out

    def test_scan_with_sp_dlb(self, capsys):
        from repro.cli import main

        assert main(["scan", "--n", "13", "--g", "2",
                     "--proposal", "sp-dlb"]) == 0
        out = capsys.readouterr().out
        assert "scan-sp-dlb" in out
        assert "verified against numpy reference" in out
