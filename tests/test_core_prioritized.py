"""Tests for Scan-MP-PC (prioritized communications)."""

import numpy as np
import pytest

from repro.core.params import NodeConfig, ProblemConfig
from repro.core.prioritized import ScanMPPC


class TestScanMPPC:
    @pytest.mark.parametrize("w,v", [(4, 2), (8, 4)])
    def test_correct(self, machine, rng, w, v):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=w, V=v)
        result = ScanMPPC(machine, node).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_never_host_staged(self, machine, rng):
        """The defining property: all traffic stays on P2P paths."""
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=8, V=4)
        result = ScanMPPC(machine, node).run(data)
        kinds = {r.kind for r in result.trace.transfer_records()}
        assert "host_staged" not in kinds

    def test_networks_reduced_when_g_below_y(self, machine, rng):
        """'when G < Y, the number of PCIe being used has to be reduced'."""
        data = rng.integers(0, 100, (1, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=8, V=4)
        result = ScanMPPC(machine, node).run(data)
        assert result.config["networks_used"] == 1
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_groups_partition_problems(self, machine, rng):
        data = rng.integers(0, 100, (16, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=8, V=4)
        result = ScanMPPC(machine, node).run(data)
        assert result.config["networks_used"] == 2
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_multi_node_without_mpi(self, cluster, rng):
        """The multi-node MP-PC variant runs the same code on several nodes
        with zero MPI records."""
        data = rng.integers(0, 100, (16, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=8, V=4, M=2)
        result = ScanMPPC(cluster, node).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))
        assert result.trace.mpi_records() == []
        assert result.config["networks_used"] == 4

    def test_faster_than_mps_at_w8(self, machine, rng):
        """MP-PC's raison d'etre: avoid the W=8 host-staging penalty."""
        from repro.core.multi_gpu import ScanMPS

        data = rng.integers(0, 100, (32, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=8, V=4)
        t_mps = ScanMPS(machine, node).run(data).total_time_s
        t_mppc = ScanMPPC(machine, node).run(data).total_time_s
        assert t_mppc < t_mps

    def test_memory_released(self, machine, rng):
        before = [g.pool.used for g in machine.gpus]
        data = rng.integers(0, 100, (8, 4096)).astype(np.int32)
        ScanMPPC(machine, NodeConfig.from_counts(W=8, V=4)).run(data)
        assert [g.pool.used for g in machine.gpus] == before

    def test_plan_respects_eq3(self, machine):
        node = NodeConfig.from_counts(W=8, V=4)
        executor = ScanMPPC(machine, node)
        problem = ProblemConfig.from_sizes(N=1 << 15, G=8)
        plan = executor.plan_for(problem, groups_used=2)
        chunks = (problem.N // node.V) // plan.chunk_size
        assert chunks >= 1  # each of the V GPUs owns at least one chunk

    def test_groups_spread_boards(self, machine):
        node = NodeConfig.from_counts(W=4, V=2)
        executor = ScanMPPC(machine, node)
        for group in executor.groups:
            boards = {machine.board_of(g) for g in group}
            assert len(boards) == len(group)
