"""Tests for the persistent autotuning cache."""

import json

import pytest

from repro.errors import TuningError
from repro.core.autotune_cache import (
    VARIANT_PSEUDO_PROPOSAL,
    AutotuneCache,
    CachedTuner,
    cache_key,
    cost_fingerprint,
)
from repro.core.params import NodeConfig, ProblemConfig
from repro.gpusim.arch import KEPLER_K80, MAXWELL_GM200
from repro.interconnect.topology import tsubame_kfc
from repro.interconnect.transfer import TransferCostParams


def _autotune_entries(path):
    """The persisted autotune section (the store's on-disk document)."""
    return json.loads(path.read_text())["sections"]["autotune"]


def _mutate_autotune(path, mutate):
    """Edit the persisted autotune entries in place (corruption tests)."""
    doc = json.loads(path.read_text())
    mutate(doc["sections"]["autotune"])
    path.write_text(json.dumps(doc))


class TestCacheKey:
    def test_distinguishes_everything(self):
        p1 = ProblemConfig.from_sizes(N=1 << 14, G=8)
        p2 = ProblemConfig.from_sizes(N=1 << 15, G=8)
        node = NodeConfig.from_counts(W=4, V=4)
        keys = {
            cache_key(KEPLER_K80, p1, "sp", None),
            cache_key(KEPLER_K80, p2, "sp", None),
            cache_key(KEPLER_K80, p1, "mps", node),
            cache_key(MAXWELL_GM200, p1, "sp", None),
            cache_key(KEPLER_K80, p1.__class__.from_sizes(N=1 << 14, G=8, operator="max"), "sp", None),
        }
        assert len(keys) == 5

    def test_stable(self):
        p = ProblemConfig.from_sizes(N=1 << 14, G=8)
        assert cache_key(KEPLER_K80, p, "sp", None) == cache_key(KEPLER_K80, p, "sp", None)

    def test_fingerprint_appended(self):
        p = ProblemConfig.from_sizes(N=1 << 14, G=8)
        bare = cache_key(KEPLER_K80, p, "sp", None)
        printed = cache_key(KEPLER_K80, p, "sp", None, fingerprint="abc123")
        assert printed == bare + "|abc123"


class TestCostFingerprint:
    def test_stable_across_identical_machines(self):
        assert cost_fingerprint(tsubame_kfc(1)) == cost_fingerprint(tsubame_kfc(1))

    def test_transfer_params_change_fingerprint(self):
        """Regression: two machines with identical (W, V, M) shapes but
        different interconnect pricing must not share an autotune entry."""
        baseline = tsubame_kfc(1)
        repriced = tsubame_kfc(1)
        repriced.transfer_params = TransferCostParams(p2p_bandwidth_gbs=25.0)
        assert cost_fingerprint(baseline) != cost_fingerprint(repriced)

        p = ProblemConfig.from_sizes(N=1 << 14, G=8)
        k1 = cache_key(KEPLER_K80, p, "sp", None,
                       fingerprint=cost_fingerprint(baseline))
        k2 = cache_key(KEPLER_K80, p, "sp", None,
                       fingerprint=cost_fingerprint(repriced))
        assert k1 != k2

    def test_degraded_health_changes_fingerprint(self):
        """A degraded machine prices transfers differently; its best-K must
        not be read back on (or written for) the healthy machine."""
        healthy = tsubame_kfc(1)
        degraded = tsubame_kfc(1)
        degraded.ensure_health()
        before = cost_fingerprint(degraded)
        degraded.mark_offline(0)
        assert cost_fingerprint(degraded) != before
        assert cost_fingerprint(degraded) != cost_fingerprint(healthy)

    def test_armed_but_clean_health_state_is_distinct_key_space(self):
        # ensure_health() alone creates an empty HealthState; the fingerprint
        # may differ from the health-less one, but it must be stable.
        armed = tsubame_kfc(1)
        armed.ensure_health()
        assert cost_fingerprint(armed) == cost_fingerprint(armed)


class TestCachedTuner:
    def test_memoises(self, machine, rng):
        tuner = CachedTuner(machine)
        problem = ProblemConfig.from_sizes(N=1 << 14, G=16)
        k1 = tuner.best_k(problem, "sp")
        k2 = tuner.best_k(problem, "sp")
        assert k1 == k2
        assert tuner.cache.misses == 1 and tuner.cache.hits == 1

    def test_persists_roundtrip(self, machine, tmp_path):
        path = tmp_path / "wisdom.json"
        problem = ProblemConfig.from_sizes(N=1 << 14, G=16)
        first = CachedTuner(machine, AutotuneCache(path))
        k = first.best_k(problem, "sp")
        assert path.exists()

        second = CachedTuner(machine, AutotuneCache(path))
        assert second.best_k(problem, "sp") == k
        assert second.cache.hits == 1 and second.cache.misses == 0

    def test_multi_gpu_proposals(self, machine):
        tuner = CachedTuner(machine)
        problem = ProblemConfig.from_sizes(N=1 << 15, G=16)
        node = NodeConfig.from_counts(W=8, V=4)
        k_mps = tuner.best_k(problem, "mps", node)
        k_mppc = tuner.best_k(problem, "mppc", node)
        assert k_mps >= 1 and k_mppc >= 1

    def test_stale_entry_retuned(self, machine, tmp_path):
        """A cached K outside the current search space triggers a re-tune."""
        path = tmp_path / "wisdom.json"
        problem = ProblemConfig.from_sizes(N=1 << 14, G=16)
        tuner = CachedTuner(machine, AutotuneCache(path))
        tuner.best_k(problem, "sp")
        # Corrupt the stored K to an inadmissible value.
        def bump(entries):
            for entry in entries.values():
                entry["best_k"] = 1 << 20
        _mutate_autotune(path, bump)

        fresh = CachedTuner(machine, AutotuneCache(path))
        k = fresh.best_k(problem, "sp")
        assert k != 1 << 20
        assert fresh.cache.misses == 1

    def test_repriced_machine_is_a_cache_miss(self, machine):
        """Regression: changing the transfer pricing between calls must make
        the tuner re-sweep instead of reading the stale best-K back."""
        tuner = CachedTuner(machine)
        problem = ProblemConfig.from_sizes(N=1 << 14, G=16)
        tuner.best_k(problem, "sp")
        machine.transfer_params = TransferCostParams(p2p_bandwidth_gbs=25.0)
        tuner.best_k(problem, "sp")
        assert tuner.cache.misses == 2 and tuner.cache.hits == 0

    def test_unreadable_cache_quarantined_not_fatal(self, tmp_path):
        """Satellite regression: a corrupt cache file used to crash session
        construction with TuningError. It must instead be quarantined to
        ``<path>.corrupt`` (kept for inspection) and the cache start fresh."""
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        cache = AutotuneCache(path)
        assert len(cache) == 0
        assert "unreadable" in cache.store.quarantined_reason
        quarantined = tmp_path / "bad.json.corrupt"
        assert quarantined.read_text() == "{not json"
        assert not path.exists()
        # The quarantined path is reusable: a save writes a valid store.
        cache.save()
        assert json.loads(path.read_text())["schema"] >= 1

    def test_wrong_schema_version_quarantined(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 999, "sections": {}}))
        cache = AutotuneCache(path)
        assert len(cache) == 0
        assert "schema" in cache.store.quarantined_reason
        assert (tmp_path / "future.json.corrupt").exists()

    def test_save_is_atomic_document(self, machine, tmp_path):
        """Saves go through tmp+rename and produce the versioned document
        (no flat legacy writes, no stray tmp files left behind)."""
        path = tmp_path / "wisdom.json"
        tuner = CachedTuner(machine, AutotuneCache(path))
        tuner.best_k(ProblemConfig.from_sizes(N=1 << 14, G=16), "sp")
        doc = json.loads(path.read_text())
        assert set(doc) == {"schema", "sections"}
        assert doc["sections"]["autotune"]
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_malformed_entry_skipped_rest_served(self, machine, tmp_path):
        """One mangled record must not drop the rest of the wisdom."""
        path = tmp_path / "wisdom.json"
        problem = ProblemConfig.from_sizes(N=1 << 14, G=16)
        writer = CachedTuner(machine, AutotuneCache(path))
        k = writer.best_k(problem, "sp")

        def mangle(entries):
            entries["garbage-key"] = {"best_k": "not-an-int"}
        _mutate_autotune(path, mangle)

        reader = CachedTuner(machine, AutotuneCache(path))
        assert reader.best_k(problem, "sp") == k
        assert reader.cache.hits == 1 and reader.cache.misses == 0

    def test_unknown_proposal(self, machine):
        tuner = CachedTuner(machine)
        with pytest.raises(TuningError):
            tuner.best_k(ProblemConfig.from_sizes(N=1 << 14), "teleport")


class TestVariantSelection:
    """The sp vs sp-dlb algorithm choice: its own key space, memoised,
    persisted, and invalidated by the PR-4 cost fingerprint."""

    def test_variant_key_space_is_distinct_from_k_sweeps(self):
        """The cache key distinguishes three-kernel plans, lookback plans
        and the variant decision itself — no aliasing between them."""
        p = ProblemConfig.from_sizes(N=1 << 20, G=1)
        keys = {
            cache_key(KEPLER_K80, p, "sp", None, fingerprint="f"),
            cache_key(KEPLER_K80, p, "sp-dlb", None, fingerprint="f"),
            cache_key(KEPLER_K80, p, VARIANT_PSEUDO_PROPOSAL, None,
                      fingerprint="f"),
        }
        assert len(keys) == 3

    def test_memoises(self, machine):
        tuner = CachedTuner(machine)
        problem = ProblemConfig.from_sizes(N=1 << 24, G=1)
        first = tuner.best_single_gpu_variant(problem)
        second = tuner.best_single_gpu_variant(problem)
        assert first == second == "sp-dlb"
        assert tuner.cache.misses == 1 and tuner.cache.hits == 1

    def test_crossover_is_cached_per_problem(self, machine):
        tuner = CachedTuner(machine)
        assert tuner.best_single_gpu_variant(
            ProblemConfig.from_sizes(N=1 << 13, G=1)
        ) == "sp"
        assert tuner.best_single_gpu_variant(
            ProblemConfig.from_sizes(N=1 << 24, G=1)
        ) == "sp-dlb"
        assert tuner.cache.misses == 2  # distinct keys, no aliasing

    def test_persists_roundtrip(self, machine, tmp_path):
        path = tmp_path / "wisdom.json"
        problem = ProblemConfig.from_sizes(N=1 << 24, G=1)
        first = CachedTuner(machine, AutotuneCache(path))
        choice = first.best_single_gpu_variant(problem)
        assert any(e.get("variant") == choice
                   for e in _autotune_entries(path).values())

        second = CachedTuner(machine, AutotuneCache(path))
        assert second.best_single_gpu_variant(problem) == choice
        assert second.cache.hits == 1 and second.cache.misses == 0

    def test_forced_health_change_invalidates_the_variant(self, machine):
        """The satellite regression: marking a GPU offline changes the
        PR-4 cost fingerprint, so the cached algorithm choice is not read
        back — the decision is re-tuned against the degraded machine."""
        tuner = CachedTuner(machine)
        problem = ProblemConfig.from_sizes(N=1 << 24, G=1)
        tuner.best_single_gpu_variant(problem)
        assert tuner.cache.misses == 1

        machine.ensure_health()
        machine.mark_offline(0)
        tuner.best_single_gpu_variant(problem)
        assert tuner.cache.misses == 2 and tuner.cache.hits == 0

    def test_stale_variant_name_is_retuned(self, machine, tmp_path):
        """An on-disk entry naming an unknown algorithm (e.g. from a
        renamed proposal) must not be trusted."""
        path = tmp_path / "wisdom.json"
        problem = ProblemConfig.from_sizes(N=1 << 24, G=1)
        tuner = CachedTuner(machine, AutotuneCache(path))
        tuner.best_single_gpu_variant(problem)

        def rename(entries):
            for entry in entries.values():
                entry["variant"] = "sp-dlb-v0"
        _mutate_autotune(path, rename)

        fresh = CachedTuner(machine, AutotuneCache(path))
        assert fresh.best_single_gpu_variant(problem) in ("sp", "sp-dlb")
        assert fresh.cache.misses == 1 and fresh.cache.hits == 0

    def test_legacy_flat_cache_migrates(self, machine, tmp_path):
        """Caches written before the plan store were a flat ``{key: entry}``
        mapping (some also predate the variant field). They must migrate
        into the versioned document and keep serving their K entries."""
        path = tmp_path / "wisdom.json"
        problem = ProblemConfig.from_sizes(N=1 << 14, G=16)
        writer = CachedTuner(machine, AutotuneCache(path))
        k = writer.best_k(problem, "sp")
        legacy = _autotune_entries(path)
        for entry in legacy.values():
            entry.pop("variant", None)
        path.write_text(json.dumps(legacy))  # the old flat format

        reader = CachedTuner(machine, AutotuneCache(path))
        assert reader.best_k(problem, "sp") == k
        assert reader.cache.hits == 1
        # Not quarantined — adopted; the next save upgrades the file.
        assert reader.cache.store.quarantined_reason == ""
        reader.cache.save()
        assert json.loads(path.read_text())["schema"] >= 1
