"""Tests for the proposal-comparison utility."""


from repro.core.compare import compare_proposals, format_comparison
from repro.core.params import ProblemConfig


class TestCompare:
    def test_sorted_fastest_first(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 16, G=1 << 10)
        rows = compare_proposals(machine, problem)
        times = [r.time_s for r in rows]
        assert times == sorted(times)

    def test_batch_winner_is_mppc(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 16, G=1 << 12)
        rows = compare_proposals(machine, problem)
        assert rows[0].name == "scan-mp-pc W=8"

    def test_recommendation_marked(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 16, G=1 << 12)
        rows = compare_proposals(machine, problem)
        recommended = [r for r in rows if r.recommended]
        assert len(recommended) == 1
        assert recommended[0].name == "scan-mp-pc W=8"

    def test_recommendation_is_near_optimal(self, machine):
        """Premise 4's pick lands within 25% of the best proposal, across a
        spread of shapes."""
        for n, g in ((13, 15), (20, 8), (24, 2), (28, 0)):
            problem = ProblemConfig.from_sizes(N=1 << n, G=1 << g)
            rows = compare_proposals(machine, problem, include_baselines=False)
            proposals = [r for r in rows if r.kind == "proposal"]
            best = proposals[0]
            recommended = next(r for r in proposals if r.recommended)
            assert recommended.time_s <= best.time_s * 1.25, (n, g)

    def test_baselines_included_and_excludable(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 14, G=4)
        with_libs = compare_proposals(machine, problem)
        without = compare_proposals(machine, problem, include_baselines=False)
        assert {r.name for r in with_libs} - {r.name for r in without} == {
            "cudpp", "thrust", "moderngpu", "cub", "lightscan",
        }

    def test_multi_node_candidate_on_clusters(self, cluster):
        problem = ProblemConfig.from_sizes(N=1 << 16, G=4)
        rows = compare_proposals(cluster, problem, include_baselines=False)
        assert any(r.name == "scan-mn-mps" for r in rows)

    def test_chained_extension_listed(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 16, G=4)
        rows = compare_proposals(machine, problem, include_baselines=False)
        chained = next(r for r in rows if r.name == "scan-chained")
        assert chained.kind == "extension"

    def test_format(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 14, G=16)
        text = format_comparison(compare_proposals(machine, problem))
        assert "strategy" in text and "Premise-4" in text
        assert "*" in text


class TestCompareCLI:
    def test_cli_compare(self, capsys):
        from repro.cli import main

        assert main(["compare", "--n", "14", "--g", "6"]) == 0
        out = capsys.readouterr().out
        assert "comparison at N=2^14" in out
        assert "scan-mp-pc" in out

    def test_cli_compare_no_baselines(self, capsys):
        from repro.cli import main

        assert main(["compare", "--n", "13", "--g", "4", "--no-baselines"]) == 0
        out = capsys.readouterr().out
        assert "cudpp" not in out
