"""Cluster-layer tests: routing policies, tenant quotas, lockstepped
clocks, drain/re-admit failover, and end-to-end replay determinism.

The router must be traffic-invisible (every request's output identical
to the sequential oracle regardless of which replica served it, even
across a mid-traffic drain) and schedule-deterministic (the same
workload produces the same batch assignment on every run).
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    TenantSpec,
    cluster_replay,
    policy_names,
    resolve_policy,
)
from repro.core.health import AttemptRecord, RetryPolicy
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    FailoverExhaustedError,
    QuotaExceededError,
)
from repro.obs.slo import slo_class
from repro.primitives.sequential import inclusive_scan
from repro.serve.replay import poisson_workload


def rows(rng, count, n=1 << 10, dtype=np.int32):
    return [rng.integers(-40, 90, n).astype(dtype) for _ in range(count)]


def small_router(**kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_s", 1e-4)
    return ClusterRouter(**kwargs)


def exhaust(sess):
    """Make a session fail every scan with a realistic attempt trail."""
    def scan(data, **kwargs):
        raise FailoverExhaustedError(
            "injected exhaustion",
            attempts=[AttemptRecord(attempt=1, proposal="sp", node=None,
                                    error_type="DeviceLostError",
                                    error="injected", backoff_s=1e-3)],
        )
    sess.scan = scan
    sess.health.policy = RetryPolicy(max_batch_splits=0)


class TestPolicies:
    def test_policy_registry(self):
        assert policy_names() == ["least_depth", "managed", "round_robin"]
        with pytest.raises(ConfigurationError, match="unknown dispatch"):
            resolve_policy("warp-drive")
        p = resolve_policy("managed")
        assert resolve_policy(p) is p

    def test_round_robin_rotates_statically(self, rng):
        router = small_router(replicas=3, policy="round_robin")
        tickets = [router.submit(d) for d in rows(rng, 6)]
        assert [t.replica_id for t in tickets] == [0, 1, 2, 0, 1, 2]

    def test_least_depth_prefers_emptier_replica(self, rng):
        router = small_router(replicas=2, policy="least_depth", max_batch=8)
        a = router.submit(rows(rng, 1)[0])
        b = router.submit(rows(rng, 1)[0])
        assert a.replica_id == 0 and b.replica_id == 1

    def test_managed_prefers_idle_executor(self, rng):
        """The master-managed policy sees serial-executor backlog: after
        replica 0 runs a batch, new work goes to the idle replica 1."""
        router = small_router(replicas=2, policy="managed", max_batch=1)
        a = router.submit(rows(rng, 1)[0])  # flushes on 0: executor busy
        assert a.replica_id == 0
        assert router.replica(0).service.busy_until_s > 0.0
        b = router.submit(rows(rng, 1)[0])
        assert b.replica_id == 1

    def test_backpressure_falls_through_to_next_replica(self, rng):
        router = small_router(replicas=2, policy="round_robin",
                              max_batch=64, max_queue=2)
        tickets = [router.submit(d) for d in rows(rng, 4)]
        # Round-robin alternates; queues hold 2 each. The 5th request's
        # preferred replica is full either way -> lands on the other...
        assert [t.replica_id for t in tickets] == [0, 1, 0, 1]
        with pytest.raises(BackpressureError, match="every active replica"):
            router.submit(rows(rng, 1)[0])
        assert router.rejected == 1


class TestTenants:
    def test_quota_sheds_with_quota_error(self, rng):
        router = small_router(
            replicas=1, max_batch=64,
            tenants=[TenantSpec("acme", max_inflight=2)],
        )
        for d in rows(rng, 2):
            router.submit(d, tenant="acme")
        with pytest.raises(QuotaExceededError, match="acme"):
            router.submit(rows(rng, 1)[0], tenant="acme")
        # QuotaExceededError is shed-load: a BackpressureError subclass.
        assert issubclass(QuotaExceededError, BackpressureError)
        assert router.quota_rejected == 1
        # Another tenant is unaffected by acme's quota.
        other = router.submit(rows(rng, 1)[0], tenant="bulk")
        assert other.replica_id == 0

    def test_quota_frees_as_requests_complete(self, rng):
        router = small_router(
            replicas=1, max_batch=2,
            tenants=[TenantSpec("acme", max_inflight=2)],
        )
        for d in rows(rng, 2):
            router.submit(d, tenant="acme")  # 2nd flushes the batch
        t = router.submit(rows(rng, 1)[0], tenant="acme")
        assert t is not None and router.quota_rejected == 0

    def test_tenant_slo_monitor_per_class(self, rng):
        router = small_router(
            replicas=1, max_batch=2,
            tenants=[TenantSpec("acme", slo_class="gold")],
        )
        for d in rows(rng, 2):
            router.submit(d, tenant="acme")
        snap = router.tenant_slo("acme").snapshot()
        names = {o["name"] for o in snap["objectives"]}
        assert names == {"acme/gold-latency", "acme/gold-availability"}
        assert snap["observed"] == 2

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError, match="max_inflight"):
            TenantSpec("x", max_inflight=-1)
        with pytest.raises(ConfigurationError, match="SLO class"):
            TenantSpec("x", slo_class="platinum")
        with pytest.raises(ValueError, match="unknown SLO class"):
            slo_class("platinum")


class TestLockstepClock:
    def test_advance_moves_every_replica(self, rng):
        router = small_router(replicas=3, max_batch=64, max_wait_s=1e-3)
        tickets = [router.submit(d, at=i * 1e-4)
                   for i, d in enumerate(rows(rng, 3))]
        router.advance_to(0.05)
        assert all(t.done for t in tickets)
        assert router.clock.now == 0.05
        for r in router.replicas:
            assert r.service.clock.now == 0.05

    def test_cluster_clock_never_runs_backwards(self, rng):
        router = small_router(replicas=1)
        router.advance_to(1.0)
        with pytest.raises(ConfigurationError, match="backwards"):
            router.advance_to(0.5)


class TestFailover:
    def test_strikes_drain_replica_and_reroute(self, rng):
        router = small_router(replicas=2, policy="round_robin",
                              drain_after=1, max_batch=64)
        exhaust(router.replica(0).service.session)
        d = rows(rng, 1)[0]
        t = router.submit(d, at=0.0)
        assert t.replica_id == 0
        router.advance_to(2e-4)  # max_wait fires -> exhaustion -> drain
        assert router.replica(0).state == "down"
        assert router.drains == 1
        # The failed request was rerouted to replica 1 and served there.
        router.drain_queues()
        assert t.done and t.replica_id == 1 and t.reroutes == 1
        np.testing.assert_array_equal(t.result(), inclusive_scan(d))

    def test_drain_evicts_and_reroutes_queued_requests(self, rng):
        router = small_router(replicas=2, policy="round_robin",
                              max_batch=64, max_wait_s=1.0)
        data = rows(rng, 4)
        tickets = [router.submit(d) for d in data]
        assert [t.replica_id for t in tickets] == [0, 1, 0, 1]
        router.fail_replica(0)
        moved = [t for t in tickets if t.replica_id == 1]
        assert len(moved) == 4  # replica 0's two requests moved over
        router.drain_queues()
        for d, t in zip(data, tickets):
            np.testing.assert_array_equal(t.result(), inclusive_scan(d))
        # Eviction reroutes are not charged to the request's budget.
        assert all(t.reroutes == 0 for t in tickets)
        assert router.rerouted == 2

    def test_readmit_spawns_from_leader_snapshot(self, rng):
        router = small_router(replicas=2, recovery_s=1e-3, max_batch=1)
        # Warm the leader so its snapshot carries plans.
        warm = [router.submit(d, at=0.0) for d in rows(rng, 2)]
        assert all(t.done for t in warm)
        old_service = router.replica(1).service
        router.fail_replica(1)
        router.advance_to(router.clock.now + 5e-3)
        replica = router.replica(1)
        assert replica.state == "active"
        assert replica.service is not old_service
        assert router.readmits == 1
        info = replica.service.session.restore_info
        assert info is not None and info["compatible"]
        # Resolver plans are process-wide (prime is a no-op in-process);
        # the per-session warmth is the memoised executor entries.
        assert info["entries"] > 0
        t = router.submit(rows(rng, 1)[0], tenant="acme")
        router.drain_queues()
        assert t.done

    def test_all_replicas_down_parks_then_recovers(self, rng):
        router = small_router(replicas=1, recovery_s=1e-3, max_batch=64,
                              max_wait_s=1.0)
        data = rows(rng, 3)
        tickets = [router.submit(d) for d in data]
        router.fail_replica(0)
        assert router.parked == 3
        assert all(t.status == "evicted" or t.inner is None for t in tickets)
        with pytest.raises(ConfigurationError, match="parked"):
            tickets[0].result()
        router.advance_to(5e-3)  # past recovery: readmit + unpark
        assert router.parked == 0
        router.drain_queues()
        for d, t in zip(data, tickets):
            np.testing.assert_array_equal(t.result(), inclusive_scan(d))
        assert router.readmits == 1

    def test_reroute_budget_exhaustion_sticks_failure(self, rng):
        router = small_router(replicas=2, policy="round_robin",
                              drain_after=99, max_reroutes=0, max_batch=64)
        exhaust(router.replica(0).service.session)
        t = router.submit(rows(rng, 1)[0], at=0.0)
        router.advance_to(1e-3)
        assert t.failed and t.reroutes == 0
        # Failed-but-not-rerouted requests are terminal: cluster latency
        # includes the attempted backoff the replica charged.
        assert t.latency_s > 0.0
        assert router.latency.count == 1


class TestClusterReplay:
    WL = dict(requests=48, sizes_log2=(10, 12), rate=150_000.0, seed=11)

    def test_replay_verifies_and_scales(self):
        wl = poisson_workload(**self.WL)
        p99 = {}
        for n in (1, 4):
            router = small_router(replicas=n, max_batch=8, max_wait_s=2e-5,
                                  policy="managed")
            summary = cluster_replay(router, wl)
            assert summary["served"] == 48
            assert summary["verified"] == 48
            assert summary["request_failures"] == 0
            p99[n] = summary["latency_p99_s"]
        # The acceptance direction: more replicas, better tail latency.
        assert p99[4] < p99[1]

    def test_drain_readmit_replay_loses_nothing(self):
        wl = poisson_workload(**self.WL)
        router = small_router(replicas=3, max_batch=8, max_wait_s=2e-5,
                              recovery_s=1e-4)
        summary = cluster_replay(router, wl, tenants=("acme", "bulk"),
                                 fail_replica_at=1e-4, fail_replica_id=0)
        assert summary["drains"] == 1 and summary["readmits"] == 1
        assert summary["served"] == 48 and summary["verified"] == 48
        assert summary["request_failures"] == 0

    def test_replay_is_deterministic(self):
        """Same schedule -> identical batch assignment across replicas
        and identical summaries, run after run (drain included)."""
        wl = poisson_workload(**self.WL)

        def run():
            router = small_router(replicas=3, max_batch=8, max_wait_s=2e-5,
                                  recovery_s=1e-4)
            summary = cluster_replay(router, wl, fail_replica_at=1e-4)
            return summary, router.batch_log

        s1, log1 = run()
        s2, log2 = run()
        assert log1 == log2
        assert s1 == s2


class TestRouterValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one replica"):
            ClusterRouter(replicas=0)
        with pytest.raises(ConfigurationError, match="drain_after"):
            ClusterRouter(replicas=1, drain_after=0)
        with pytest.raises(ConfigurationError, match="recovery_s"):
            ClusterRouter(replicas=1, recovery_s=0.0)

    def test_stats_snapshot(self, rng):
        router = small_router(replicas=2, max_batch=2)
        for d in rows(rng, 4):
            router.submit(d, tenant="acme")
        router.drain_queues()
        stats = router.stats()
        assert stats["replicas"] == 2 and stats["active_replicas"] == 2
        assert stats["submitted"] == 4 and stats["served"] == 4
        assert stats["latency"]["count"] == 4
        assert len(stats["per_replica"]) == 2
        assert "acme" in stats["tenants"]
