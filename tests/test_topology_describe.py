"""Tests for the machine-description renderer."""

from repro.gpusim.arch import PASCAL_P100
from repro.interconnect.topology import SystemTopology


class TestDescribe:
    def test_single_node(self, machine):
        text = machine.describe()
        assert "8 GPUs total" in text
        assert "pcie0.0" in text and "pcie0.1" in text
        assert "dual-die board" in text
        assert "ib switch" not in text

    def test_multi_node_mentions_ib(self, cluster):
        text = cluster.describe()
        assert "ib switch connects host0..host1" in text
        assert "node 1 (host1)" in text

    def test_single_die_arch_no_board_note(self):
        topo = SystemTopology(1, 2, 2, arch=PASCAL_P100)
        text = topo.describe()
        assert "dual-die" not in text
        assert text.count("board") == 4  # one per GPU

    def test_every_gpu_listed(self, machine):
        text = machine.describe()
        for gid in range(8):
            assert f"gpu:{gid}" in text
