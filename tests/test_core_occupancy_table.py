"""Table 3 regeneration tests."""

from repro.gpusim.arch import KEPLER_K80, MAXWELL_GM200
from repro.core.occupancy_table import format_occupancy_table, occupancy_table

PAPER_TABLE3 = [
    (1, 256, 7168, 25, 16),
    (2, 128, 7168, 50, 16),
    (4, 64, 7168, 100, 16),
    (8, 64, 14336, 100, 8),
    (16, 64, 28672, 100, 4),
    (32, 64, 49152, 100, 2),
]


class TestTable3:
    def test_exact_reproduction(self):
        rows = occupancy_table(KEPLER_K80)
        assert len(rows) == 6
        for row, (warps, regs, smem, occ, blocks) in zip(rows, PAPER_TABLE3):
            assert row.warps_per_block == warps
            assert row.regs_per_thread == regs
            assert row.smem_per_block == smem
            assert row.occupancy_percent == occ
            assert row.blocks_per_sm == blocks

    def test_bold_row_is_4_warps(self):
        """The configuration 'that maximizes both types of parallelism'."""
        rows = occupancy_table(KEPLER_K80)
        bold = [r for r in rows if r.bold]
        assert len(bold) == 1
        assert bold[0].warps_per_block == 4

    def test_maxwell_bold_row(self):
        rows = occupancy_table(MAXWELL_GM200)
        bold = [r for r in rows if r.bold]
        assert len(bold) == 1
        assert bold[0].blocks_per_sm == 32
        assert bold[0].warp_occupancy == 1.0

    def test_format_contains_marker(self):
        text = format_occupancy_table(KEPLER_K80)
        assert "Premise 1" in text
        assert "7168" in text and "49152" in text
        assert "compute capability 3.7" in text

    def test_oversized_blocks_skipped(self):
        rows = occupancy_table(KEPLER_K80, warps_choices=(1, 64, 128))
        assert [r.warps_per_block for r in rows] == [1, 64]
