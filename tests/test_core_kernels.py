"""Tests for the three-stage kernels: correctness, block independence,
and exactness of the closed-form stats (the estimate-path invariant)."""

import numpy as np
import pytest

from repro.gpusim.arch import KEPLER_K80
from repro.gpusim.device import GPU
from repro.gpusim.events import Trace
from repro.gpusim.kernel import ExecutionEngine
from repro.core.kernels import (
    chunk_reduce_stats,
    intermediate_scan_stats,
    launch_chunk_reduce,
    launch_intermediate_scan,
    launch_scan_add,
    scan_add_stats,
)
from repro.core.params import ProblemConfig
from repro.core.plan import build_execution_plan
from repro.primitives.sequential import exclusive_scan


def make_setup(gpu, n=1 << 14, g=4, k=2, dtype=np.int32, operator="add",
               inclusive=True, seed=0):
    rng = np.random.default_rng(seed)
    problem = ProblemConfig.from_sizes(N=n, G=g, dtype=dtype, operator=operator,
                                       inclusive=inclusive)
    plan = build_execution_plan(gpu.arch, problem, K=k)
    host = rng.integers(0, 100, (g, n)).astype(dtype)
    data = gpu.upload(host)
    aux = gpu.alloc((g, plan.chunks_total), dtype)
    return problem, plan, host, data, aux


class TestChunkReduce:
    def test_writes_chunk_reductions(self, gpu):
        problem, plan, host, data, aux = make_setup(gpu)
        launch_chunk_reduce(Trace(), gpu, data, aux, plan)
        chunk = plan.chunk_size
        expected = host.reshape(problem.G, -1, chunk).sum(axis=-1, dtype=np.int32)
        np.testing.assert_array_equal(aux.to_host(), expected)

    def test_does_not_modify_input(self, gpu):
        problem, plan, host, data, aux = make_setup(gpu)
        launch_chunk_reduce(Trace(), gpu, data, aux, plan)
        np.testing.assert_array_equal(data.to_host(), host)

    def test_max_operator(self, gpu):
        problem, plan, host, data, aux = make_setup(gpu, operator="max")
        launch_chunk_reduce(Trace(), gpu, data, aux, plan)
        chunk = plan.chunk_size
        expected = host.reshape(problem.G, -1, chunk).max(axis=-1)
        np.testing.assert_array_equal(aux.to_host(), expected)

    def test_column_offset(self, gpu):
        problem, plan, host, data, _ = make_setup(gpu)
        wide = gpu.alloc((problem.G, 2 * plan.chunks_total), np.int32, fill=-1)
        launch_chunk_reduce(Trace(), gpu, data, wide, plan,
                            chunk_column_offset=plan.chunks_total)
        out = wide.to_host()
        assert (out[:, : plan.chunks_total] == -1).all()
        chunk = plan.chunk_size
        expected = host.reshape(problem.G, -1, chunk).sum(axis=-1, dtype=np.int32)
        np.testing.assert_array_equal(out[:, plan.chunks_total :], expected)

    def test_stats_match_closed_form(self, gpu):
        problem, plan, host, data, aux = make_setup(gpu)
        trace = Trace()
        record = launch_chunk_reduce(trace, gpu, data, aux, plan)
        analytic = chunk_reduce_stats(plan, gpu.arch.warp_size)
        assert record.global_bytes_read == analytic.global_bytes_read
        assert record.global_bytes_written == analytic.global_bytes_written
        assert record.shuffle_instructions == analytic.shuffle_instructions
        assert record.operator_applications == analytic.operator_applications


class TestIntermediateScan:
    def test_exclusive_scan_in_place(self, gpu):
        problem, plan, host, data, aux = make_setup(gpu)
        launch_chunk_reduce(Trace(), gpu, data, aux, plan)
        before = aux.to_host()
        launch_intermediate_scan(Trace(), gpu, aux, plan)
        np.testing.assert_array_equal(aux.to_host(), exclusive_scan(before, axis=-1))

    def test_stats_match_closed_form(self, gpu):
        problem, plan, host, data, aux = make_setup(gpu)
        trace = Trace()
        record = launch_intermediate_scan(trace, gpu, aux, plan)
        analytic = intermediate_scan_stats(plan, gpu.arch.warp_size)
        assert record.global_bytes_read == analytic.global_bytes_read
        assert record.shuffle_instructions == analytic.shuffle_instructions


class TestScanAdd:
    def run_pipeline(self, gpu, **kwargs):
        problem, plan, host, data, aux = make_setup(gpu, **kwargs)
        trace = Trace()
        launch_chunk_reduce(trace, gpu, data, aux, plan)
        launch_intermediate_scan(trace, gpu, aux, plan)
        launch_scan_add(trace, gpu, data, aux, plan)
        return problem, host, data.to_host(), trace

    def test_inclusive_result(self, gpu):
        _, host, out, _ = self.run_pipeline(gpu)
        np.testing.assert_array_equal(out, np.cumsum(host, axis=-1, dtype=np.int32))

    def test_exclusive_result(self, gpu):
        _, host, out, _ = self.run_pipeline(gpu, inclusive=False)
        np.testing.assert_array_equal(out, exclusive_scan(host, axis=-1))

    def test_max_operator_end_to_end(self, gpu):
        _, host, out, _ = self.run_pipeline(gpu, operator="max")
        np.testing.assert_array_equal(out, np.maximum.accumulate(host, axis=-1))

    @pytest.mark.parametrize("k", [1, 2, 8])
    @pytest.mark.parametrize("g", [1, 4])
    def test_cascade_depths(self, gpu, k, g):
        _, host, out, _ = self.run_pipeline(gpu, k=k, g=g)
        np.testing.assert_array_equal(out, np.cumsum(host, axis=-1, dtype=np.int32))

    def test_int64(self, gpu):
        _, host, out, _ = self.run_pipeline(gpu, dtype=np.int64)
        np.testing.assert_array_equal(out, np.cumsum(host, axis=-1))

    def test_stats_match_closed_form(self, gpu):
        problem, plan, host, data, aux = make_setup(gpu)
        trace = Trace()
        launch_chunk_reduce(trace, gpu, data, aux, plan)
        launch_intermediate_scan(trace, gpu, aux, plan)
        record = launch_scan_add(trace, gpu, data, aux, plan)
        analytic = scan_add_stats(plan, gpu.arch.warp_size)
        assert record.global_bytes_read == analytic.global_bytes_read
        assert record.global_bytes_written == analytic.global_bytes_written
        assert record.shuffle_instructions == analytic.shuffle_instructions
        assert record.operator_applications == analytic.operator_applications


class TestBlockIndependence:
    """The same kernels must produce identical results when blocks execute
    one at a time in a random order — proof there is no illegal
    inter-block communication within a kernel (Section 3's global-sync
    between kernels is the only cross-block dependency)."""

    def test_blockwise_equals_vectorized(self):
        vec_gpu = GPU(0, KEPLER_K80)
        blk_gpu = GPU(
            1, KEPLER_K80,
            engine=ExecutionEngine(mode="blockwise", rng=np.random.default_rng(3)),
        )
        results = []
        stats = []
        for gpu in (vec_gpu, blk_gpu):
            problem, plan, host, data, aux = make_setup(gpu, n=1 << 13, g=2, k=2)
            trace = Trace()
            launch_chunk_reduce(trace, gpu, data, aux, plan)
            launch_intermediate_scan(trace, gpu, aux, plan)
            launch_scan_add(trace, gpu, data, aux, plan)
            results.append(data.to_host())
            stats.append([
                (r.global_bytes_read, r.global_bytes_written,
                 r.shuffle_instructions, r.operator_applications)
                for r in trace.kernel_records()
            ])
        np.testing.assert_array_equal(results[0], results[1])
        assert stats[0] == stats[1]  # counters are schedule-independent
