"""Failover tests: availability faults, retry/replanning, and the no-tax
guarantee that a healthy machine's traces are bit-identical with the fault
machinery present.

Chaos-marked classes inject device losses / link failures mid-run and
assert the session still returns the *correct* scan — on a degraded
placement — with the failure visible in health state, obs counters and
the trace's backoff record.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.executor import build_executor
from repro.core.health import HealthTracker, RetryPolicy, degraded_candidates
from repro.core.params import NodeConfig
from repro.core.session import ScanSession
from repro.errors import (
    DeviceLostError,
    FailoverExhaustedError,
    LinkDownError,
)
from repro.gpusim.faults import (
    DeviceDown,
    FaultPlan,
    FaultSchedule,
    FaultyTransferEngine,
    LaneSlow,
    LinkDown,
    parse_fault,
)
from repro.interconnect.topology import tsubame_kfc


def batch(rng, g=4, n=1 << 12, dtype=np.int64):
    return rng.integers(-50, 100, (g, n)).astype(dtype)


#: (proposal, scan kwargs, nodes, fault call) — every registered proposal.
#: The fault call places the device loss mid-run; the chained scan is a
#: single launch, so its loss can only land on call 1.
PROPOSALS = [
    ("sp", {}, 1, 3),
    ("chained", {}, 1, 1),
    ("pp", {"W": 4}, 1, 3),
    ("mps", {"W": 4, "V": 4}, 1, 3),
    ("mppc", {"W": 8, "V": 4}, 1, 3),
    ("mn-mps", {"W": 4, "V": 4, "M": 2}, 2, 3),
]


@pytest.mark.chaos
class TestDeviceLossFailover:
    @pytest.mark.parametrize("proposal,kwargs,nodes,at_call",
                             PROPOSALS, ids=[p[0] for p in PROPOSALS])
    def test_completes_correctly_after_mid_run_device_loss(
        self, rng, proposal, kwargs, nodes, at_call
    ):
        """A GPU dying mid-run must not change the answer — only the
        placement (and the simulated latency, via backoff)."""
        machine = tsubame_kfc(nodes)
        session = ScanSession(machine)
        data = batch(rng)
        expected = np.cumsum(data, axis=1)
        # Fire a few calls in, so the loss lands mid-pipeline.
        machine.install_faults(
            FaultSchedule([DeviceDown(at_call=at_call, gpu_id=0)])
        )
        result = session.scan(data, proposal=proposal, **kwargs)
        np.testing.assert_array_equal(result.output, expected)
        failover = result.config["failover"]
        assert failover["attempts"] >= 2
        assert failover["backoff_s"] > 0
        assert session.health.failovers == 1
        assert machine.gpus[0].offline
        # The backoff is charged into the trace, on its own lane/phase.
        backoff_records = [r for r in result.trace.records
                           if r.phase == "failover"]
        assert len(backoff_records) == 1
        assert backoff_records[0].time_s == pytest.approx(
            failover["backoff_s"])

    @pytest.mark.parametrize("proposal,kwargs,nodes,at_call",
                             PROPOSALS, ids=[p[0] for p in PROPOSALS])
    def test_followup_calls_serve_from_degraded_plan(
        self, rng, proposal, kwargs, nodes, at_call
    ):
        """After one failover the session caches the degraded plan: the
        next identical request runs clean (no retry, no backoff)."""
        machine = tsubame_kfc(nodes)
        session = ScanSession(machine)
        data = batch(rng)
        expected = np.cumsum(data, axis=1)
        machine.install_faults(
            FaultSchedule([DeviceDown(at_call=at_call, gpu_id=0)])
        )
        session.scan(data, proposal=proposal, **kwargs)
        again = session.scan(data, proposal=proposal, **kwargs)
        np.testing.assert_array_equal(again.output, expected)
        assert "failover" not in again.config
        assert session.health.failovers == 1

    def test_mps_replans_across_networks_when_network_short(self, rng):
        """W=4 V=4 with a dead GPU in network 0: the same shape lands on
        network 1's four survivors."""
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        data = batch(rng)
        machine.install_faults(FaultSchedule([DeviceDown(at_call=2, gpu_id=1)]))
        result = session.scan(data, proposal="mps", W=4, V=4)
        used = result.config["gpu_ids"]
        assert 1 not in used
        assert set(used) == {4, 5, 6, 7}

    def test_single_gpu_falls_back_to_healthy_peer(self, rng):
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        data = batch(rng)
        machine.install_faults(FaultSchedule([DeviceDown(at_call=1, gpu_id=0)]))
        result = session.scan(data, proposal="sp")
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1))
        assert result.config["gpu_ids"] == [1]

    def test_obs_records_failover_span_and_retry_counter(self, rng):
        machine = tsubame_kfc(1)
        obs.reset()
        obs.enable()
        try:
            session = ScanSession(machine)
            data = batch(rng)
            machine.install_faults(
                FaultSchedule([DeviceDown(at_call=3, gpu_id=0)])
            )
            session.scan(data, proposal="mps", W=4, V=4)
            metrics = list(obs.registry())
            retries = [m for m in metrics if m.name == "scan.retries"]
            assert retries and sum(m.value for m in retries) >= 1
            failovers = [m for m in metrics if m.name == "scan.failovers"]
            assert failovers and sum(m.value for m in failovers) >= 1
            attempts = [m for m in metrics if m.name == "scan.attempts"]
            assert attempts and attempts[0].count >= 1
            spans = [
                s
                for root in obs.finished_spans()
                for s in root.walk()
                if s.name == "failover"
            ]
            assert len(spans) >= 1
        finally:
            obs.disable()
            obs.reset()


@pytest.mark.chaos
class TestLinkFaults:
    def test_soft_link_down_reroutes_host_staged_silently(self, rng):
        """A degraded network loses P2P: same answer, no retry, transfers
        rerouted (and priced) host-staged."""
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        data = batch(rng)
        machine.install_faults(
            FaultSchedule([LinkDown(at_call=1, node=0, network=0)])
        )
        result = session.scan(data, proposal="mps", W=4, V=4)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1))
        assert "failover" not in result.config
        kinds = {r.kind for r in result.trace.records if hasattr(r, "kind")}
        assert "host_staged" in kinds and "p2p" not in kinds

    def test_hard_link_down_fails_over_to_surviving_network(self, rng):
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        data = batch(rng)
        machine.install_faults(
            FaultSchedule([LinkDown(at_call=3, node=0, network=0, hard=True)])
        )
        result = session.scan(data, proposal="mps", W=4, V=4)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1))
        assert "failover" in result.config
        assert set(result.config["gpu_ids"]) == {4, 5, 6, 7}
        assert session.health.link_failures >= 1

    def test_lane_slowdown_prices_transfers_up(self, rng):
        machine = tsubame_kfc(1)
        data = batch(rng)
        clean = ScanSession(tsubame_kfc(1)).scan(data, proposal="mps", W=4, V=4)
        machine.install_faults(
            FaultSchedule([LaneSlow(at_call=1, lane="pcie0.0", factor=4.0)])
        )
        slowed = ScanSession(machine).scan(data, proposal="mps", W=4, V=4)
        np.testing.assert_array_equal(slowed.output, clean.output)
        assert slowed.total_time_s > clean.total_time_s


@pytest.mark.chaos
class TestRetryExhaustion:
    def test_exhaustion_raises_typed_error_with_attempt_trace(self, rng):
        """max_attempts=1 turns the first availability failure terminal;
        the typed error carries the attempt records."""
        machine = tsubame_kfc(1)
        session = ScanSession(machine, retry_policy=RetryPolicy(max_attempts=1))
        data = batch(rng)
        machine.install_faults(FaultSchedule([DeviceDown(at_call=3, gpu_id=0)]))
        with pytest.raises(FailoverExhaustedError) as excinfo:
            session.scan(data, proposal="mps", W=4, V=4)
        attempts = excinfo.value.attempts
        assert len(attempts) == 1
        assert attempts[0].attempt == 1
        assert attempts[0].error_type == "DeviceLostError"
        assert attempts[0].node == (4, 4, 1)
        assert attempts[0].backoff_s > 0

    def test_no_surviving_placement_raises_with_attempts(self, rng):
        """Losing every GPU leaves nothing to replan onto."""
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        data = batch(rng)
        machine.install_faults(FaultSchedule(
            [DeviceDown(at_call=1, gpu_id=g) for g in range(8)]
        ))
        with pytest.raises(FailoverExhaustedError) as excinfo:
            session.scan(data, proposal="sp")
        assert len(excinfo.value.attempts) >= 1

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=1e-3, backoff_factor=2.0)
        assert policy.backoff_s(1) == pytest.approx(1e-3)
        assert policy.backoff_s(2) == pytest.approx(2e-3)
        assert policy.backoff_s(3) == pytest.approx(4e-3)


class TestHealthyPathBitIdentity:
    """No fault schedule installed => zero behaviour tax, bit for bit."""

    @pytest.mark.parametrize("proposal,kwargs,nodes,at_call",
                             PROPOSALS, ids=[p[0] for p in PROPOSALS])
    def test_session_trace_matches_direct_executor(
        self, rng, proposal, kwargs, nodes, at_call
    ):
        """The session's failover wrapper must not perturb the healthy
        path: its trace equals a direct executor run's, record for
        record."""
        data = batch(rng)
        node = NodeConfig.from_counts(
            W=kwargs.get("W", 1), V=kwargs.get("V", kwargs.get("W", 1)),
            M=kwargs.get("M", 1),
        )
        direct = build_executor(proposal, tsubame_kfc(nodes), node).run(data)
        served = ScanSession(tsubame_kfc(nodes)).scan(
            data, proposal=proposal, **kwargs
        )
        assert served.trace.records == direct.trace.records
        assert served.total_time_s == direct.total_time_s
        np.testing.assert_array_equal(served.output, direct.output)

    @pytest.mark.parametrize("proposal,kwargs,nodes,at_call",
                             PROPOSALS, ids=[p[0] for p in PROPOSALS])
    def test_armed_but_unfired_schedule_is_invisible(
        self, rng, proposal, kwargs, nodes, at_call
    ):
        """A schedule whose trigger never fires must leave the trace
        bit-identical to a machine with no schedule at all."""
        data = batch(rng)
        clean = ScanSession(tsubame_kfc(nodes)).scan(
            data, proposal=proposal, **kwargs
        )
        armed_machine = tsubame_kfc(nodes)
        armed_machine.install_faults(
            FaultSchedule([DeviceDown(at_call=10**9, gpu_id=0)])
        )
        armed = ScanSession(armed_machine).scan(
            data, proposal=proposal, **kwargs
        )
        assert armed.trace.records == clean.trace.records
        assert armed.total_time_s == clean.total_time_s


@pytest.mark.chaos
class TestFaultScheduleMechanics:
    def test_time_triggered_fault_fires_after_simulated_time(self, rng):
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        data = batch(rng)
        # Far below one scan's simulated time: fires during the first run.
        machine.install_faults(
            FaultSchedule([DeviceDown(at_time_s=1e-5, gpu_id=0)])
        )
        result = session.scan(data, proposal="mps", W=4, V=4)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1))
        assert machine.gpus[0].offline
        assert "failover" in result.config

    def test_schedule_attach_resets_counters(self):
        fault = DeviceDown(at_call=1, gpu_id=0)
        schedule = FaultSchedule([fault])
        first = tsubame_kfc(1)
        first.install_faults(schedule)
        schedule.tick()
        assert fault.fired
        second = tsubame_kfc(1)
        second.install_faults(schedule)
        assert not fault.fired and schedule.calls == 0
        assert not second.gpus[0].offline

    def test_fault_without_trigger_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FaultSchedule([DeviceDown(gpu_id=0)])
        with pytest.raises(ConfigurationError):
            FaultSchedule([DeviceDown(at_call=1, at_time_s=1.0, gpu_id=0)])

    def test_parse_fault_specs(self):
        device = parse_fault("device:3@call=5")
        assert (device.gpu_id, device.at_call) == (3, 5)
        link = parse_fault("link:0.1@t=1e-3")
        assert (link.node, link.network, link.hard) == (0, 1, False)
        assert link.at_time_s == pytest.approx(1e-3)
        hard = parse_fault("link-hard:1.0@call=2")
        assert (hard.node, hard.network, hard.hard) == (1, 0, True)
        slow = parse_fault("slow:pcie0.1*2.5@call=7")
        assert (slow.lane, slow.factor) == ("pcie0.1", 2.5)

    def test_parse_fault_rejects_malformed(self):
        from repro.errors import ConfigurationError

        for bad in ("device:3", "device:x@call=1", "device:1@call=zero",
                    "gremlin:1@call=1", "slow:lane@call=1"):
            with pytest.raises(ConfigurationError):
                parse_fault(bad)


class TestDegradedCandidates:
    def test_first_candidate_is_the_requested_shape(self):
        machine = tsubame_kfc(1)
        node = NodeConfig.from_counts(W=4, V=4)
        first = next(degraded_candidates(machine, node))
        assert (first.W, first.V, first.M) == (4, 4, 1)

    def test_candidates_shed_v_then_w_then_m(self):
        machine = tsubame_kfc(2)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        shapes = [(c.W, c.V, c.M) for c in degraded_candidates(machine, node)]
        assert shapes[0] == (4, 4, 2)
        assert (4, 2, 2) in shapes and (2, 2, 2) in shapes
        assert (1, 1, 1) == shapes[-1]
        assert len(shapes) == len(set(shapes))

    def test_classify(self):
        tracker = HealthTracker(tsubame_kfc(1))
        assert tracker.classify(DeviceLostError("x", gpu_id=1)) == "device_lost"
        assert tracker.classify(LinkDownError("x", node=0, network=1)) == "link_down"
        assert tracker.classify(ValueError("x")) is None


@pytest.mark.chaos
class TestFaultPlanReset:
    """Satellite: FaultPlan run-state must not leak across engines/retries."""

    def test_engine_attach_resets_counters(self, machine):
        plan = FaultPlan(corrupt_nth_copy=2)
        plan.copies_seen = 7
        plan.faults_fired = 1
        FaultyTransferEngine(machine, plan)
        assert plan.copies_seen == 0 and plan.faults_fired == 0

    def test_reusing_plan_across_engines_fires_same_copy(self, machine, rng):
        """Pre-fix, the second engine would inherit copies_seen and fire
        on the wrong copy (or never)."""
        from repro.core.multi_gpu import ScanMPS

        plan = FaultPlan(corrupt_nth_copy=1, corrupt_delta=5)
        node = NodeConfig.from_counts(W=4, V=4)
        for _ in range(2):
            data = rng.integers(1, 100, (2, 1 << 12)).astype(np.int32)
            executor = ScanMPS(machine, node)
            executor.engine = FaultyTransferEngine(machine, plan)
            executor.run(data)
            assert plan.faults_fired == 1

    def test_h2d_and_d2h_count_toward_copy_index(self, machine):
        from repro.gpusim.events import Trace

        plan = FaultPlan(drop_nth_copy=2)
        engine = FaultyTransferEngine(machine, plan)
        trace = Trace()
        gpu = machine.gpus[0]
        engine.host_to_device(trace, "distribute", gpu, 4096)
        engine.device_to_host(trace, "collect", gpu, 4096)
        assert plan.copies_seen == 2
        assert plan.faults_fired == 1


@pytest.mark.chaos
class TestAdaptiveChaos:
    """The adaptive control stack under an availability-fault barrage.

    Convergence contract: every request reaches a terminal state, the
    queue fully drains (admission never deadlocks, whatever the
    controller did to the knobs mid-storm), every answer that completes
    is correct, and the knobs end inside their configured bounds. Being
    simulated end to end, the storm is also replayable: a second run
    reproduces the same decision log bit-for-bit.
    """

    REQUESTS = 96

    @staticmethod
    def _storm():
        from repro.control import ServiceControllerConfig, adaptive_controller
        from repro.serve import ScanService, bursty_workload, replay

        machine = tsubame_kfc(1)
        machine.install_faults(FaultSchedule([
            DeviceDown(at_call=30, gpu_id=0),
            LinkDown(at_call=55, node=0, network=1),         # soft reroute
            LaneSlow(at_call=80, lane="pcie0.1", factor=2.0),
        ]))
        config = ServiceControllerConfig(
            high_rate=1e5, low_rate=1e4, batch_ceiling=16,
            wait_ceiling_s=2e-4, cooldown_s=5e-6, window=8, min_samples=4,
        )
        service = ScanService(
            topology=machine, max_batch=4, max_wait_s=2e-4,
            serialize_exec=True, controller=adaptive_controller(config),
        )
        workload = bursty_workload(
            TestAdaptiveChaos.REQUESTS, sizes_log2=(12,), base_rate=2e3,
            burst_rate=1e6, burst_every=32, burst_len=24, seed=29,
        )
        stats = replay(service, workload)
        return machine, service, stats

    def test_converges_and_never_deadlocks_admission(self):
        machine, service, stats = self._storm()
        # Every fault actually fired mid-storm.
        assert machine.fault_schedule.pending == 0
        assert machine.gpus[0].offline
        # Terminal convergence: nothing stuck in a queue, nothing lost.
        assert service.depth == 0
        assert stats["served"] + stats["failed"] == self.REQUESTS
        assert stats["rejected"] == 0
        assert stats["verified"] == stats["served"]
        # The storm exercised the controller, and the knobs respected
        # their bounds throughout recovery.
        decisions = service.controller.decision_log()
        assert any(d["action"] == "scale_up" for d in decisions)
        assert 4 <= service.max_batch <= 16
        assert service.max_wait_s == pytest.approx(2e-4)

    def test_storm_replays_bit_identically(self):
        _, first_service, first_stats = self._storm()
        _, second_service, second_stats = self._storm()
        assert first_service.controller.decision_log() == \
            second_service.controller.decision_log()
        assert first_stats["latency"] == second_stats["latency"]
        assert first_stats["batch_size"] == second_stats["batch_size"]
