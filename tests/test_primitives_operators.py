"""Unit tests for the operator monoids."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.primitives.operators import (
    ADD,
    BITWISE_OR,
    BITWISE_XOR,
    MAX,
    MIN,
    MUL,
    resolve_operator,
)

ALL_OPS = [ADD, MUL, MAX, MIN, BITWISE_OR, BITWISE_XOR]


class TestResolve:
    def test_by_name(self):
        assert resolve_operator("add") is ADD
        assert resolve_operator("max") is MAX

    def test_passthrough(self):
        assert resolve_operator(MUL) is MUL

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown operator"):
            resolve_operator("median")


class TestIdentity:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
    def test_identity_is_neutral(self, op, rng):
        dtype = np.dtype(np.int32)
        values = rng.integers(1, 50, 100).astype(dtype)
        ident = op.identity(dtype)
        combined = op.combine(np.full_like(values, ident), values)
        np.testing.assert_array_equal(combined, values)

    def test_add_identity_zero(self):
        assert ADD.identity(np.dtype(np.int32)) == 0
        assert ADD.identity(np.dtype(np.float64)) == 0.0

    def test_mul_identity_one(self):
        assert MUL.identity(np.dtype(np.int64)) == 1

    def test_max_identity_is_dtype_min(self):
        assert MAX.identity(np.dtype(np.int32)) == np.iinfo(np.int32).min
        assert MAX.identity(np.dtype(np.float64)) == -np.inf

    def test_min_identity_is_dtype_max(self):
        assert MIN.identity(np.dtype(np.int16)) == np.iinfo(np.int16).max

    def test_bitwise_requires_integers(self):
        with pytest.raises(ConfigurationError):
            BITWISE_OR.identity(np.dtype(np.float32))
        with pytest.raises(ConfigurationError):
            BITWISE_XOR.identity(np.dtype(np.float64))


class TestAlgebra:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
    @given(data=st.data())
    def test_associativity(self, op, data):
        ints = st.integers(min_value=0, max_value=1000)
        a, b, c = (
            np.int64(data.draw(ints)),
            np.int64(data.draw(ints)),
            np.int64(data.draw(ints)),
        )
        left = op.combine(op.combine(a, b), c)
        right = op.combine(a, op.combine(b, c))
        assert left == right

    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
    def test_accumulate_matches_manual(self, op, rng):
        values = rng.integers(1, 20, 32).astype(np.int64)
        acc = op.accumulate(values)
        running = values[0]
        assert acc[0] == running
        for i in range(1, len(values)):
            running = op.combine(running, values[i])
            assert acc[i] == running

    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
    def test_reduce_is_last_of_accumulate(self, op, rng):
        values = rng.integers(1, 20, 64).astype(np.int64)
        assert op.reduce(values) == op.accumulate(values)[-1]
