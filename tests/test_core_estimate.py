"""Estimate-path exactness: the analytic dry-run must produce the same trace
timing as the functional run, for every proposal. This is the invariant
that lets the benchmark harness run at the paper's 2^28 scale."""

import pytest

from repro.core.multi_gpu import ScanMPS
from repro.core.multi_node import ScanMultiNodeMPS
from repro.core.params import NodeConfig, ProblemConfig
from repro.core.prioritized import ScanMPPC
from repro.core.single_gpu import ScanSP


def batch_for(problem, rng):
    return rng.integers(0, 100, (problem.G, problem.N)).astype(problem.dtype)


def records_signature(trace):
    return [
        (type(r).__name__, r.phase, r.lane, round(r.time_s, 15))
        for r in trace.records
    ]


class TestEstimateExactness:
    @pytest.mark.parametrize("n,g", [(1 << 12, 1), (1 << 14, 8), (1 << 16, 4)])
    def test_sp(self, machine, rng, n, g):
        problem = ProblemConfig.from_sizes(N=n, G=g)
        executor = ScanSP(machine.gpus[0])
        functional = executor.run(batch_for(problem, rng), collect=False)
        estimated = executor.estimate(problem)
        assert records_signature(functional.trace) == records_signature(estimated.trace)

    @pytest.mark.parametrize("w,v", [(4, 4), (8, 4)])
    def test_mps(self, machine, rng, w, v):
        problem = ProblemConfig.from_sizes(N=1 << 14, G=8)
        executor = ScanMPS(machine, NodeConfig.from_counts(W=w, V=v))
        functional = executor.run(batch_for(problem, rng), collect=False)
        estimated = executor.estimate(problem)
        assert records_signature(functional.trace) == records_signature(estimated.trace)

    def test_mppc(self, machine, rng):
        problem = ProblemConfig.from_sizes(N=1 << 14, G=8)
        executor = ScanMPPC(machine, NodeConfig.from_counts(W=8, V=4))
        functional = executor.run(batch_for(problem, rng), collect=False)
        estimated = executor.estimate(problem)
        assert records_signature(functional.trace) == records_signature(estimated.trace)

    def test_multi_node(self, cluster, rng):
        problem = ProblemConfig.from_sizes(N=1 << 14, G=4)
        executor = ScanMultiNodeMPS(cluster, NodeConfig.from_counts(W=4, V=4, M=2))
        functional = executor.run(batch_for(problem, rng), collect=False)
        estimated = executor.estimate(problem)
        assert records_signature(functional.trace) == records_signature(estimated.trace)


class TestEstimateScale:
    def test_paper_scale_without_allocation(self, machine):
        """2^28 elements (1 GiB payload) estimated without real memory."""
        problem = ProblemConfig.from_sizes(N=1 << 28, G=1)
        result = ScanSP(machine.gpus[0]).estimate(problem)
        assert result.total_time_s > 0
        assert result.config["estimated"]
        assert machine.gpus[0].pool.used == 0  # everything released

    def test_batch_paper_scale(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 13, G=1 << 15)
        result = ScanMPPC(machine, NodeConfig.from_counts(W=8, V=4)).estimate(problem)
        assert result.elements == 1 << 28
        assert result.throughput_gelems > 1.0

    def test_memory_capacity_still_enforced(self, machine):
        """Virtual buffers still account bytes: a problem too large for one
        GPU's 12 GB must fail on SP — the paper's Case 2 motivation."""
        from repro.errors import AllocationError

        problem = ProblemConfig.from_sizes(N=1 << 32, G=1)  # 16 GiB
        with pytest.raises(AllocationError):
            ScanSP(machine.gpus[0]).estimate(problem)

    def test_case2_fits_when_scattered(self, machine):
        """The same over-sized problem fits when split across 4 GPUs."""
        problem = ProblemConfig.from_sizes(N=1 << 32, G=1)
        result = ScanMPS(machine, NodeConfig.from_counts(W=4, V=4)).estimate(problem)
        assert result.total_time_s > 0
