"""Fault-injection tests: the checks must catch every injected failure.

This is mutation testing in miniature: corrupt or drop exactly one
transfer inside a multi-GPU run and assert that (a) the output really is
wrong, and (b) the diagnostic validator localises the damage."""

import numpy as np
import pytest

from repro.core.multi_gpu import ScanMPS
from repro.core.params import NodeConfig
from repro.core.validation import verify_scan_result
from repro.gpusim.faults import FaultPlan, FaultyTransferEngine, seu_flip


def run_with_faults(machine, rng, plan):
    data = rng.integers(1, 100, (4, 1 << 13)).astype(np.int32)
    node = NodeConfig.from_counts(W=4, V=4)
    executor = ScanMPS(machine, node)
    executor.engine = FaultyTransferEngine(machine, plan)
    result = executor.run(data)
    return data, result


class TestTransferFaults:
    def test_clean_run_passes(self, machine, rng):
        data, result = run_with_faults(machine, rng, FaultPlan())
        assert verify_scan_result(result, data).ok

    def test_corrupted_gather_detected(self, machine, rng):
        """Corrupting one chunk reduction on its way to the master poisons
        every element whose offset includes it."""
        plan = FaultPlan(corrupt_nth_copy=1, corrupt_delta=5)
        data, result = run_with_faults(machine, rng, plan)
        assert plan.faults_fired == 1
        report = verify_scan_result(result, data)
        assert not report.ok
        assert report.mismatched_elements > 0

    def test_corrupted_scatter_detected_on_chunk_boundary(self, machine, rng):
        """A bad scanned offset corrupts whole chunks: the validator's
        chunk-boundary heuristic fires."""
        # Copies 1..3 are the gather; 4..6 are the scatter.
        plan = FaultPlan(corrupt_nth_copy=4, corrupt_delta=9)
        data, result = run_with_faults(machine, rng, plan)
        report = verify_scan_result(result, data)
        assert not report.ok
        assert report.chunk_boundary_suspect

    def test_dropped_scatter_detected(self, machine, rng):
        plan = FaultPlan(drop_nth_copy=5)
        data, result = run_with_faults(machine, rng, plan)
        assert plan.faults_fired == 1
        assert not verify_scan_result(result, data).ok

    def test_dropped_copy_still_priced(self, machine, rng):
        """A dropped message is a data fault, not a timing fault: the trace
        is unchanged."""
        clean = run_with_faults(machine, rng, FaultPlan())[1]
        rng2 = np.random.default_rng(12345)
        faulty = run_with_faults(machine, rng2, FaultPlan(drop_nth_copy=2))[1]
        assert faulty.total_time_s == pytest.approx(clean.total_time_s, rel=1e-12)


class TestSEU:
    def test_flip_detected_and_localised(self, machine, rng):
        from repro import scan

        data = rng.integers(1, 100, (2, 4096)).astype(np.int32)
        result = scan(data, topology=machine, proposal="sp")
        # Flip a bit in the collected output (post-hoc SEU on the result).
        flat = result.output
        flat[1, 1000] ^= 1 << 7
        report = verify_scan_result(result, data)
        assert not report.ok
        assert report.first_bad_problem == 1
        assert report.first_bad_index == 1000

    def test_seu_on_device_buffer(self, machine):
        buf = machine.gpus[0].alloc((64,), np.int32, fill=0)
        seu_flip(buf, element=10, bit=3)
        assert buf.to_host()[10] == 8
        seu_flip(buf, element=10, bit=3)
        assert buf.to_host()[10] == 0
        machine.gpus[0].free(buf)

    def test_seu_rejects_floats(self, machine):
        buf = machine.gpus[0].alloc((8,), np.float64, fill=0.0)
        with pytest.raises(TypeError):
            seu_flip(buf, 0, 0)
        machine.gpus[0].free(buf)

    def test_seu_bit_range(self, machine):
        buf = machine.gpus[0].alloc((8,), np.int32, fill=0)
        with pytest.raises(ValueError):
            seu_flip(buf, 0, 32)
        machine.gpus[0].free(buf)
