"""Tests for the multi-node Scan-MPS (MPI gather/scatter flow)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.multi_node import ScanMultiNodeMPS
from repro.core.params import NodeConfig, ProblemConfig


class TestScanMultiNode:
    @pytest.mark.parametrize("m,w,v", [(2, 4, 4), (2, 2, 2), (2, 8, 4)])
    def test_correct(self, cluster, rng, m, w, v):
        data = rng.integers(0, 100, (4, 1 << 14)).astype(np.int32)
        node = NodeConfig.from_counts(W=w, V=v, M=m)
        result = ScanMultiNodeMPS(cluster, node).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_figure14_phases(self, cluster, rng):
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        result = ScanMultiNodeMPS(cluster, node).run(data)
        assert result.trace.phases() == [
            "stage1", "mpi_barrier", "mpi_gather", "stage2", "mpi_scatter", "stage3",
        ]
        breakdown = result.breakdown
        assert all(v >= 0 for v in breakdown.values())
        assert breakdown["mpi_barrier"] > 0

    def test_mpi_records_present(self, cluster, rng):
        data = rng.integers(0, 100, (2, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        result = ScanMultiNodeMPS(cluster, node).run(data)
        ops = {r.op for r in result.trace.mpi_records()}
        assert ops == {"barrier", "gather", "scatter"}

    def test_exclusive(self, cluster, rng):
        data = rng.integers(0, 100, (2, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        result = ScanMultiNodeMPS(cluster, node).run(data, inclusive=False)
        expected = np.zeros_like(data)
        expected[:, 1:] = np.cumsum(data, axis=1, dtype=np.int32)[:, :-1]
        np.testing.assert_array_equal(result.output, expected)

    def test_max_operator(self, cluster, rng):
        data = rng.integers(-100, 100, (2, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        result = ScanMultiNodeMPS(cluster, node).run(data, operator="max")
        np.testing.assert_array_equal(result.output, np.maximum.accumulate(data, axis=1))

    def test_too_many_nodes_rejected(self, machine):
        with pytest.raises(ConfigurationError, match="exceeds"):
            ScanMultiNodeMPS(machine, NodeConfig.from_counts(W=4, V=4, M=2))

    def test_memory_released(self, cluster, rng):
        before = [g.pool.used for g in cluster.gpus]
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        ScanMultiNodeMPS(cluster, NodeConfig.from_counts(W=4, V=4, M=2)).run(data)
        assert [g.pool.used for g in cluster.gpus] == before

    def test_respects_eq2(self, cluster):
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        executor = ScanMultiNodeMPS(cluster, node)
        problem = ProblemConfig.from_sizes(N=1 << 16, G=4)
        plan = executor.plan_for(problem)
        chunks = problem.N // plan.chunk_size
        assert chunks >= 8  # M*W GPUs each own >= 1 chunk

    def test_mpi_overhead_roughly_constant_in_n(self, cluster):
        """The Figure 14 observation: MPI time barely moves with data size
        while kernel time scales."""
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        executor = ScanMultiNodeMPS(cluster, node)
        mpi_times = []
        for n in (16, 20):
            problem = ProblemConfig.from_sizes(N=1 << n, G=1 << (22 - n))
            result = executor.estimate(problem)
            bd = result.breakdown
            mpi_times.append(bd["mpi_gather"] + bd["mpi_scatter"] + bd["mpi_barrier"])
        assert mpi_times[1] <= mpi_times[0] * 1.5

    def test_block_independence(self, rng):
        from repro.gpusim.kernel import ExecutionEngine
        from repro.interconnect.topology import tsubame_kfc

        data = rng.integers(0, 100, (2, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        out_vec = ScanMultiNodeMPS(tsubame_kfc(2), node).run(data).output
        blockwise = tsubame_kfc(
            2, engine=ExecutionEngine(mode="blockwise", rng=np.random.default_rng(5))
        )
        out_blk = ScanMultiNodeMPS(blockwise, node).run(data).output
        np.testing.assert_array_equal(out_vec, out_blk)
