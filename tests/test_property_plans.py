"""Hypothesis property tests over the planning/premise layer.

These pin the algebraic invariants the executors rely on, across randomly
drawn problem shapes, cascade depths and GPU-sharing factors.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.errors import ConfigurationError, ReproError
from repro.gpusim.arch import KEPLER_K80, MAXWELL_GM200, PASCAL_P100
from repro.core.params import NodeConfig, ProblemConfig
from repro.core.plan import build_execution_plan
from repro.core.premises import (
    derive_stage_kernel_params,
    k_search_space,
    premise3_k_max,
)
from repro.core.executor import pad_rows_to_batch
from repro.core.single_gpu import shrink_template_to_fit
from repro.primitives.operators import resolve_operator
from repro.primitives.sequential import inclusive_scan

ARCHS = [KEPLER_K80, MAXWELL_GM200, PASCAL_P100]


class TestPlanInvariants:
    @given(
        n=st.integers(min_value=10, max_value=26),
        g=st.integers(min_value=0, max_value=8),
        log_k=st.integers(min_value=0, max_value=8),
        log_share=st.sampled_from([0, 1, 2, 3]),
        arch_idx=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=120, deadline=None)
    def test_valid_plans_tile_exactly(self, n, g, log_k, log_share, arch_idx):
        arch = ARCHS[arch_idx]
        problem = ProblemConfig.from_sizes(N=1 << n, G=1 << g)
        share = 1 << log_share
        n_local = problem.N // share
        template = derive_stage_kernel_params(arch, problem.dtype)
        try:
            template = shrink_template_to_fit(template, n_local)
        except ConfigurationError:
            assume(False)
        k = 1 << log_k
        assume(k * template.elements_per_iteration <= n_local)
        plan = build_execution_plan(
            arch, problem, K=k, gpus_sharing_problem=share,
            stage1_template=template,
        )
        # Chunks tile the local portion exactly.
        assert plan.stage1.bx * plan.chunk_size == n_local
        # Section 3.1 identities.
        assert plan.stage1.bx == plan.stage3.bx
        assert plan.stage2.params.K == 1
        assert plan.stage2.bx == 1
        # Stage 2 covers exactly the problems it is given.
        assert plan.stage2.by * plan.stage2.params.Ly == problem.G
        # Chunk bookkeeping across GPUs.
        assert plan.chunks_total == plan.stage1.bx * share

    @given(
        n=st.integers(min_value=10, max_value=28),
        g=st.integers(min_value=0, max_value=15),
        arch_idx=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=100, deadline=None)
    def test_search_space_k_all_buildable(self, n, g, arch_idx):
        """Every K the premises admit must produce a valid plan."""
        arch = ARCHS[arch_idx]
        problem = ProblemConfig.from_sizes(N=1 << n, G=1 << g)
        template = derive_stage_kernel_params(arch, problem.dtype)
        try:
            space = k_search_space(problem, template, template, arch)
        except ReproError:
            assume(False)
        for k in space:
            plan = build_execution_plan(
                arch, problem, K=k, stage1_template=template
            )
            assert plan.stage1.params.K == k

    @given(
        n=st.integers(min_value=13, max_value=28),
        g=st.integers(min_value=0, max_value=10),
        w=st.sampled_from([2, 4, 8]),
        v=st.sampled_from([1, 2, 4]),
        m=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=100, deadline=None)
    def test_eq2_guarantees_chunks_per_gpu(self, n, g, w, v, m):
        assume(v <= w)
        problem = ProblemConfig.from_sizes(N=1 << n, G=1 << g)
        node = NodeConfig.from_counts(W=w, V=v, M=m)
        template = derive_stage_kernel_params(KEPLER_K80, problem.dtype)
        try:
            space = k_search_space(
                problem, template, template, KEPLER_K80, node=node, proposal="mps"
            )
        except ReproError:
            assume(False)
        for k in space:
            chunks = problem.N // (k * template.elements_per_iteration)
            assert chunks >= node.M * node.W

    @given(
        n=st.integers(min_value=12, max_value=28),
        g=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_eq1_bound_scales_with_total(self, n, g):
        """Doubling the total payload never shrinks the Eq.-1 K bound."""
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        small = premise3_k_max(
            ProblemConfig.from_sizes(N=1 << n, G=1 << g), kp, kp, KEPLER_K80
        )
        large = premise3_k_max(
            ProblemConfig.from_sizes(N=1 << n, G=1 << (g + 1)), kp, kp, KEPLER_K80
        )
        assert large >= small


class TestShrinkInvariants:
    @given(
        n_local=st.integers(min_value=1, max_value=1 << 22),
        arch_idx=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=100, deadline=None)
    def test_shrunk_template_always_fits(self, n_local, arch_idx):
        template = derive_stage_kernel_params(ARCHS[arch_idx], np.int32)
        shrunk = shrink_template_to_fit(template, n_local)
        assert shrunk.elements_per_iteration <= n_local
        # Never grows beyond the original.
        assert shrunk.p <= template.p
        assert shrunk.lx <= template.lx
        # Shuffle bound survives shrinking.
        assert shrunk.s <= 5


class TestPadRowsInvariants:
    """The serving layer's batch shaping (`pad_rows_to_batch`) must be
    output-invisible: identity padding can never perturb the prefix of any
    real element, and the padded shape must always be a legal power-of-two
    ``(G, N)`` problem."""

    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=500),
                         min_size=1, max_size=9),
        log_n=st.integers(min_value=9, max_value=11),
        operator=st.sampled_from(["add", "max", "min", "mul"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_padding_is_output_invisible(self, lengths, log_n, operator, seed):
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        low = 1 if operator == "mul" else -40
        high = 3 if operator == "mul" else 90
        rows = [rng.integers(low, high, size).astype(np.int64)
                for size in lengths]
        batch = pad_rows_to_batch(rows, n, operator)

        # Legal problem shape: power-of-two row count covering all rows.
        g = batch.shape[0]
        assert batch.shape[1] == n
        assert g & (g - 1) == 0
        assert len(rows) <= g < 2 * max(len(rows), 1) + 1

        # Padding cells hold the operator identity...
        op = resolve_operator(operator)
        ident = op.identity(batch.dtype)
        for i, row in enumerate(rows):
            assert (batch[i, row.size:] == ident).all()
        assert (batch[len(rows):] == ident).all()

        # ...so scanning the padded batch reproduces each row's scan on
        # its real prefix exactly.
        scanned = inclusive_scan(batch, op=operator, axis=-1)
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(
                scanned[i, : row.size], inclusive_scan(row, op=operator)
            )
