"""Perf smoke test: the serving benchmark's warm path beats its cold path.

Runs :func:`benchmarks.bench_serving_throughput.run_serving_benchmark` at
tiny sizes so it finishes in seconds. The full-size benchmark asserts a
>= 3x geomean; at toy sizes the kernel bodies are so cheap that the ratio
is dominated by per-call construction, so the smoke test only demands the
direction — warm must not be slower than cold — which still catches a
broken session cache (every call missing) or a pool that thrashes.

Marked ``perf``: wall-clock assertions are load-sensitive, so CI can
deselect them with ``-m "not perf"``.
"""

import numpy as np
import pytest

from benchmarks.bench_serving_throughput import (
    format_serving_table,
    run_serving_benchmark,
)

pytestmark = pytest.mark.perf


def test_warm_serving_not_slower_than_cold():
    payload = run_serving_benchmark(
        n_log2=11, g=4, repeats=5, proposals=("sp", "mps"), json_path=None
    )
    table = format_serving_table(payload)
    for proposal, row in payload["proposals"].items():
        assert row["warm_speedup"] >= 1.0, f"{proposal} slower warm than cold:\n{table}"
    assert np.isfinite(payload["geomean_warm_speedup"])
