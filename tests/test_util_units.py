"""Unit tests for byte/time/throughput formatting."""

import pytest

from repro.util.units import GIB, KIB, MIB, format_bytes, format_seconds, format_throughput


class TestFormatBytes:
    def test_plain_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"

    def test_binary_suffixes(self):
        assert format_bytes(KIB) == "1.00 KiB"
        assert format_bytes(MIB) == "1.00 MiB"
        assert format_bytes(3 * GIB) == "3.00 GiB"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatSeconds:
    def test_unit_selection(self):
        assert format_seconds(2.0) == "2.000 s"
        assert format_seconds(2e-3) == "2.000 ms"
        assert format_seconds(2e-6) == "2.000 us"
        assert format_seconds(2e-9) == "2.0 ns"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_seconds(-0.1)


class TestFormatThroughput:
    def test_gelems(self):
        assert format_throughput(2e9, 1.0) == "2.000 Gelem/s"

    def test_melems(self):
        assert format_throughput(5e6, 1.0) == "5.000 Melem/s"

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError):
            format_throughput(10, 0.0)
