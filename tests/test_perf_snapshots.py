"""Simulated-performance snapshots: the model's regression harness.

The cost model is fully deterministic, so canonical configurations have
exact expected times. These snapshots pin the calibrated model: an
unintended change to any constant or counter trips them immediately. If
you *intend* to recalibrate, regenerate the values and update
EXPERIMENTS.md in the same change (see CONTRIBUTING.md rule 3).
"""

import pytest

from repro import tsubame_kfc
from repro.core import (
    NodeConfig,
    ProblemConfig,
    ScanChained,
    ScanMPPC,
    ScanMPS,
    ScanMultiNodeMPS,
    ScanSP,
)

#: name -> (expected seconds, builder)
SNAPSHOTS = {
    "sp_n24_g4": 0.017973322488888888,
    "sp_n28_g1": 0.018115317155555553,
    "mps_w4_n20_g8": 0.005627253214814814,
    "mps_w8_n13_g15": 7.868018471308643,
    "mppc_w8_n16_g12": 0.0035876266074074074,
    "mn_m2w4_n20_g8": 0.003258890469135802,
    "chained_n24_g4": 0.011988647288888888,
}


@pytest.fixture(scope="module")
def machines():
    return tsubame_kfc(1), tsubame_kfc(2)


def run_snapshot(name, machines):
    m1, m2 = machines
    if name == "sp_n24_g4":
        return ScanSP(m1.gpus[0]).estimate(ProblemConfig.from_sizes(N=1 << 24, G=16))
    if name == "sp_n28_g1":
        return ScanSP(m1.gpus[0]).estimate(ProblemConfig.from_sizes(N=1 << 28, G=1))
    if name == "mps_w4_n20_g8":
        return ScanMPS(m1, NodeConfig.from_counts(W=4, V=4)).estimate(
            ProblemConfig.from_sizes(N=1 << 20, G=256)
        )
    if name == "mps_w8_n13_g15":
        return ScanMPS(m1, NodeConfig.from_counts(W=8, V=4)).estimate(
            ProblemConfig.from_sizes(N=1 << 13, G=1 << 15)
        )
    if name == "mppc_w8_n16_g12":
        return ScanMPPC(m1, NodeConfig.from_counts(W=8, V=4)).estimate(
            ProblemConfig.from_sizes(N=1 << 16, G=1 << 12)
        )
    if name == "mn_m2w4_n20_g8":
        return ScanMultiNodeMPS(m2, NodeConfig.from_counts(W=4, V=4, M=2)).estimate(
            ProblemConfig.from_sizes(N=1 << 20, G=256)
        )
    if name == "chained_n24_g4":
        return ScanChained(m1.gpus[0]).estimate(ProblemConfig.from_sizes(N=1 << 24, G=16))
    raise KeyError(name)


@pytest.mark.parametrize("name", sorted(SNAPSHOTS))
def test_snapshot(name, machines):
    result = run_snapshot(name, machines)
    assert result.total_time_s == pytest.approx(SNAPSHOTS[name], rel=1e-9)


def test_snapshots_are_deterministic(machines):
    a = run_snapshot("mppc_w8_n16_g12", machines).total_time_s
    b = run_snapshot("mppc_w8_n16_g12", machines).total_time_s
    assert a == b
