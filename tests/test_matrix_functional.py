"""Exhaustive functional matrix: every proposal x a grid of small shapes.

Broad, cheap coverage: tiny problems stress the template-shrinking logic,
degenerate chunk counts, Ly^2 packing and every proposal's data movement,
all verified against the numpy reference.
"""

import numpy as np
import pytest

from repro import scan
from repro.interconnect.topology import tsubame_kfc

SHAPES = [(n, g) for n in (4, 6, 8, 10, 12) for g in (0, 1, 3, 5)]
PROPOSALS = [
    ("sp", {}),
    ("pp", {"W": 4, "V": 4}),
    ("mps", {"W": 2, "V": 2}),
    ("mps", {"W": 4, "V": 4}),
    ("mppc", {"W": 8, "V": 4}),
]


@pytest.fixture(scope="module")
def machine():
    return tsubame_kfc(1)


@pytest.mark.parametrize("n,g", SHAPES)
@pytest.mark.parametrize("proposal,kwargs", PROPOSALS,
                         ids=lambda p: p if isinstance(p, str) else str(p))
def test_matrix(machine, n, g, proposal, kwargs):
    rng = np.random.default_rng(n * 100 + g)
    data = rng.integers(-100, 100, (1 << g, 1 << n)).astype(np.int64)
    if proposal in ("mps", "mppc") and (1 << n) < 2 * kwargs.get("W", 1):
        pytest.skip("portion smaller than one element per GPU")
    result = scan(data, topology=machine, proposal=proposal, **kwargs)
    np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1))
    assert result.total_time_s > 0


@pytest.mark.parametrize("n,g", [(8, 2), (12, 4)])
def test_matrix_multinode(n, g):
    cluster = tsubame_kfc(2)
    rng = np.random.default_rng(n + g)
    data = rng.integers(-100, 100, (1 << g, 1 << n)).astype(np.int64)
    result = scan(data, topology=cluster, proposal="mn-mps", W=4, V=4, M=2)
    np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1))
