"""Tests for the Ladner-Fischer LF(k) family (the paper's chosen pattern)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.primitives.ladner_fischer import (
    ladner_fischer_scan,
    ladner_fischer_schedule,
)
from repro.primitives.networks import (
    schedule_depth,
    schedule_work,
    sklansky_schedule,
)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 64, 256])
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_all_members_compute_scan(self, n, k, rng):
        data = rng.integers(-100, 100, n).astype(np.int64)
        np.testing.assert_array_equal(
            ladner_fischer_scan(data, k=k), np.cumsum(data)
        )

    @given(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60)
    def test_property_every_size_and_k(self, log_n, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-1000, 1000, 1 << log_n).astype(np.int64)
        np.testing.assert_array_equal(ladner_fischer_scan(data, k=k), np.cumsum(data))

    def test_batched(self, rng):
        data = rng.integers(0, 50, (6, 32)).astype(np.int64)
        np.testing.assert_array_equal(
            ladner_fischer_scan(data, axis=-1), np.cumsum(data, axis=-1)
        )


class TestFamilyStructure:
    @pytest.mark.parametrize("n", [8, 32, 128, 512])
    def test_lf0_matches_sklansky_structure(self, n):
        """LF(0) is the minimum-depth member == Sklansky's construction."""
        lf0 = ladner_fischer_schedule(n, 0)
        sk = sklansky_schedule(n)
        assert schedule_depth(lf0) == schedule_depth(sk)
        assert schedule_work(lf0) == schedule_work(sk)

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_depth_is_logn_plus_k(self, n):
        log_n = n.bit_length() - 1
        for k in range(0, log_n - 1):
            assert schedule_depth(ladner_fischer_schedule(n, k)) == log_n + k

    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_work_decreases_with_k(self, n):
        """The family trades one stage of depth for less work per level."""
        log_n = n.bit_length() - 1
        works = [schedule_work(ladner_fischer_schedule(n, k)) for k in range(log_n - 1)]
        assert all(a >= b for a, b in zip(works, works[1:]))
        assert works[0] > works[-1]

    def test_k_clamped_at_recursion_floor(self):
        deep = ladner_fischer_schedule(8, 100)
        assert schedule_depth(deep) <= 2 * 3  # never deeper than ~2 log n

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            ladner_fischer_schedule(8, -1)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            ladner_fischer_schedule(12, 0)
