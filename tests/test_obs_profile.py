"""Attribution profiler: bit-exact folding of traces into categories.

The load-bearing acceptance properties:

- for **every** registered proposal, the profiler's category table sums
  to the trace's end-to-end simulated time as *float equality* — the
  fold replays the trace composition rule, it does not approximate it;
- the profile's communication share is the same number
  :func:`repro.gpusim.metrics.communication_share` computes (same
  critical-lane selection, same comm classification), checked exactly on
  the multi-GPU proposals and within 1% on sp-dlb per the acceptance
  criterion;
- the per-phase critical path reproduces ``trace.breakdown()`` and the
  folded-stack export is flamegraph-parseable.
"""

import json
import re

import numpy as np
import pytest

from repro.core.api import scan
from repro.core.health import RetryPolicy
from repro.core.session import ScanSession
from repro.gpusim.events import Trace
from repro.gpusim.faults import DeviceDown, FaultSchedule
from repro.gpusim.metrics import communication_share
from repro.interconnect.topology import tsubame_kfc
from repro.obs.profile import (
    CATEGORIES,
    COMMUNICATION_CATEGORIES,
    AttributionProfile,
    folded_stacks,
    profile_result,
    profile_service,
    profile_trace,
    write_folded,
)

#: Every registered proposal on a legal placement (mirrors
#: tests/test_differential.py so new proposals break this file too).
PROPOSALS = [
    ("sp", {}, 1),
    ("pp", {"W": 4}, 1),
    ("mps", {"W": 4, "V": 4}, 1),
    ("mppc", {"W": 8, "V": 4}, 1),
    ("mn-mps", {"W": 4, "V": 4, "M": 2}, 2),
    ("chained", {}, 1),
    ("sp-dlb", {}, 1),
]


def run_scan(rng, proposal, kwargs, nodes, g=8, n=1 << 11):
    data = rng.integers(-40, 90, (g, n)).astype(np.int64)
    return scan(data, topology=tsubame_kfc(nodes), proposal=proposal, **kwargs)


class TestBitExactness:
    """sum(categories) == trace.total_time(), proposal by proposal."""

    @pytest.mark.parametrize("proposal,kwargs,nodes", PROPOSALS,
                             ids=[p[0] for p in PROPOSALS])
    def test_categories_sum_to_total_bit_exactly(self, rng, proposal,
                                                 kwargs, nodes):
        result = run_scan(rng, proposal, kwargs, nodes)
        profile = profile_result(result)
        total = result.trace.total_time()
        assert profile.total_time_s == total  # same bits, not approx
        assert sum(profile.categories.values()) == total
        # The category table covers the canonical taxonomy, nothing else.
        assert tuple(profile.categories) == CATEGORIES

    @pytest.mark.parametrize("proposal,kwargs,nodes", PROPOSALS,
                             ids=[p[0] for p in PROPOSALS])
    def test_critical_path_reproduces_breakdown(self, rng, proposal,
                                                kwargs, nodes):
        result = run_scan(rng, proposal, kwargs, nodes)
        profile = profile_result(result)
        assert {p.phase: p.time_s for p in profile.phases} == \
            result.trace.breakdown()

    def test_queue_wait_stays_outside_the_invariant(self, rng):
        result = run_scan(rng, "mps", {"W": 4, "V": 4}, 1)
        profile = profile_trace(result.trace, queue_wait_s=1.0)
        assert profile.queue_wait_s == 1.0
        assert sum(profile.categories.values()) == result.trace.total_time()

    def test_backoff_lands_in_its_category_and_still_sums(self, rng):
        """A degraded (failed-over) trace carries a backoff record; the
        fold must attribute it and keep the exact-sum invariant."""
        machine = tsubame_kfc(1)
        machine.install_faults(FaultSchedule([DeviceDown(at_call=2, gpu_id=1)]))
        session = ScanSession(machine,
                              retry_policy=RetryPolicy(backoff_base_s=1e-3))
        data = rng.integers(-40, 90, (8, 1 << 11)).astype(np.int64)
        result = session.scan(data, proposal="mps", W=4, V=4)
        profile = profile_result(result)
        assert profile.categories["backoff"] > 0
        assert sum(profile.categories.values()) == result.trace.total_time()

    def test_empty_trace_profiles_to_zero(self):
        profile = profile_trace(Trace())
        assert profile.total_time_s == 0
        assert profile.communication_share == 0.0
        assert profile.compute_share == 0.0
        assert profile.phases == [] and profile.devices == []


class TestCommunicationShare:
    """The profiler and repro.gpusim.metrics must not disagree."""

    @pytest.mark.parametrize("proposal,kwargs,nodes", PROPOSALS,
                             ids=[p[0] for p in PROPOSALS])
    def test_share_matches_metrics_exactly(self, rng, proposal, kwargs, nodes):
        result = run_scan(rng, proposal, kwargs, nodes)
        profile = profile_result(result)
        assert profile.communication_share == communication_share(result.trace)
        assert profile.compute_share == 1.0 - profile.communication_share

    def test_sp_dlb_share_within_one_percent(self, rng):
        """The acceptance criterion stated as a bound (the equality above
        is stronger; this pins the criterion itself)."""
        result = run_scan(rng, "sp-dlb", {}, 1)
        profile = profile_result(result)
        assert abs(profile.communication_share
                   - communication_share(result.trace)) <= 0.01

    def test_mn_mps_is_communication_heavy(self, rng):
        """Multi-node scattering pays MPI collectives on the critical
        path — the profile must show a nonzero comm share and attribute
        it to the mpi category."""
        result = run_scan(rng, "mn-mps", {"W": 4, "V": 4, "M": 2}, 2)
        profile = profile_result(result)
        assert profile.communication_share > 0
        assert profile.categories["mpi"] > 0
        comm = sum(profile.categories[c] for c in CATEGORIES
                   if c in COMMUNICATION_CATEGORIES)
        assert profile.communication_share == comm / profile.total_time_s

    def test_sp_dlb_exposes_lookback_stall(self, rng):
        result = run_scan(rng, "sp-dlb", {}, 1)
        profile = profile_result(result)
        assert profile.categories["lookback_stall"] > 0
        assert profile.categories["compute"] > 0


class TestViews:
    def test_device_timelines_cover_every_lane(self, rng):
        result = run_scan(rng, "mps", {"W": 4, "V": 4}, 1)
        profile = profile_result(result)
        lanes = {rec.lane for rec in result.trace.records}
        assert {d.lane for d in profile.devices} == lanes
        for device in profile.devices:
            assert device.busy_s == sum(device.per_phase.values())
            assert 0 <= device.utilization <= 1.0 + 1e-12

    def test_result_profile_method(self, rng):
        result = run_scan(rng, "mps", {"W": 4, "V": 4}, 1)
        profile = result.profile()
        assert isinstance(profile, AttributionProfile)
        assert profile.proposal == result.proposal
        assert profile.total_time_s == result.trace.total_time()

    def test_to_dict_is_json_serializable(self, rng):
        result = run_scan(rng, "mn-mps", {"W": 4, "V": 4, "M": 2}, 2)
        payload = json.loads(json.dumps(profile_result(result).to_dict()))
        assert payload["proposal"] == result.proposal
        assert set(payload["categories"]) == set(CATEGORIES)
        assert payload["critical_path"] and payload["devices"]

    def test_format_mentions_shares_and_critical_path(self, rng):
        result = run_scan(rng, "mn-mps", {"W": 4, "V": 4, "M": 2}, 2)
        text = profile_result(result).format()
        assert "communication" in text and "critical path" in text
        assert "[comm]" in text and "[comp]" in text


class TestFoldedStacks:
    LINE = re.compile(r"^[^;]+;[^;]+;[^;]+;\S+ \d+$")

    def test_lines_are_collapsed_stack_format(self, rng):
        result = run_scan(rng, "mps", {"W": 4, "V": 4}, 1)
        folded = folded_stacks(result.trace, proposal=result.proposal)
        assert folded.endswith("\n")
        lines = folded.splitlines()
        assert lines
        for line in lines:
            assert self.LINE.match(line), line
            assert line.startswith(f"{result.proposal};")

    def test_stall_leaf_split_for_sp_dlb(self, rng):
        result = run_scan(rng, "sp-dlb", {}, 1)
        folded = folded_stacks(result.trace)
        assert any(";stall " in line for line in folded.splitlines())

    def test_busy_nanoseconds_match_record_sum(self, rng):
        """Folded values are busy time (occupancy), so they sum to the
        per-record total, not the composed wall-clock."""
        result = run_scan(rng, "mps", {"W": 4, "V": 4}, 1)
        folded = folded_stacks(result.trace)
        folded_ns = sum(int(line.rsplit(" ", 1)[1])
                        for line in folded.splitlines())
        busy_ns = sum(round(rec.time_s * 1e9) for rec in result.trace.records)
        assert folded_ns == busy_ns

    def test_write_folded_round_trips(self, rng, tmp_path):
        result = run_scan(rng, "mps", {"W": 4, "V": 4}, 1)
        path = write_folded(str(tmp_path / "scan.folded"), result.trace,
                            proposal=result.proposal)
        assert (tmp_path / "scan.folded").read_text() == \
            folded_stacks(result.trace, proposal=result.proposal)
        assert path == str(tmp_path / "scan.folded")

    def test_empty_trace_folds_to_empty_string(self):
        assert folded_stacks(Trace()) == ""


class TestProfileService:
    def test_per_batch_profiles_keep_invariant(self, rng):
        service = ScanSession(tsubame_kfc(1)).service(max_batch=4,
                                                      proposal="mps",
                                                      W=4, V=4)
        for _ in range(8):
            service.submit(rng.integers(-40, 90, 1 << 10).astype(np.int64))
        service.drain()
        report = profile_service(service)
        assert report["profiles"]
        for profile in report["profiles"]:
            assert sum(profile.categories.values()) == \
                profile.trace.total_time()
        assert report["queue_wait_s"] == service.total_queue_wait_s
        label = report["profiles"][0].proposal
        roll_up = report["per_proposal"][label]
        for cat in CATEGORIES:
            assert roll_up[cat] == pytest.approx(
                sum(p.categories[cat] for p in report["profiles"]
                    if p.proposal == label)
            )
