"""Tests for Scan-SP (single-GPU batch scan) including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.gpusim.arch import KEPLER_K80
from repro.gpusim.device import GPU
from repro.core.params import KernelParams, ProblemConfig
from repro.core.single_gpu import (
    ScanSP,
    coerce_batch,
    scan_single_gpu,
    shrink_template_to_fit,
)
from repro.primitives.sequential import exclusive_scan, inclusive_scan


class TestCoerceBatch:
    def test_1d_becomes_g1(self):
        out = coerce_batch(np.arange(8))
        assert out.shape == (1, 8)

    def test_2d_passthrough(self, rng):
        data = rng.integers(0, 10, (4, 16))
        assert coerce_batch(data).shape == (4, 16)

    def test_3d_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_batch(np.zeros((2, 2, 2)))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError, match="powers of two"):
            coerce_batch(np.zeros((1, 100)))
        with pytest.raises(ConfigurationError, match="powers of two"):
            coerce_batch(np.zeros((3, 128)))


class TestShrinkTemplate:
    def test_noop_when_fits(self):
        template = KernelParams(s=2, p=3, l=7, lx=7, ly=0)
        assert shrink_template_to_fit(template, 1 << 20) == template

    def test_reduces_p_first(self):
        template = KernelParams(s=2, p=3, l=7, lx=7, ly=0)
        shrunk = shrink_template_to_fit(template, 256)
        assert shrunk.p == 1 and shrunk.lx == 7

    def test_reduces_lx_when_needed(self):
        template = KernelParams(s=2, p=3, l=7, lx=7, ly=0)
        shrunk = shrink_template_to_fit(template, 16)
        assert shrunk.p == 0 and shrunk.lx == 4

    def test_impossible(self):
        template = KernelParams(s=0, p=0, l=0, lx=0, ly=0)
        shrink_template_to_fit(template, 1)  # 1 element fits
        with pytest.raises(ConfigurationError):
            shrink_template_to_fit(template, 0)


class TestScanSP:
    def test_correct_inclusive(self, machine, rng):
        data = rng.integers(0, 100, (8, 4096)).astype(np.int32)
        result = scan_single_gpu(machine.gpus[0], data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))
        assert result.proposal == "scan-sp"
        assert result.total_time_s > 0

    def test_correct_exclusive(self, machine, rng):
        data = rng.integers(0, 100, (4, 2048)).astype(np.int32)
        result = scan_single_gpu(machine.gpus[0], data, inclusive=False)
        np.testing.assert_array_equal(result.output, exclusive_scan(data, axis=-1))

    def test_g1_vector_input(self, machine, rng):
        data = rng.integers(0, 100, 8192).astype(np.int32)
        result = scan_single_gpu(machine.gpus[0], data)
        np.testing.assert_array_equal(result.output[0], np.cumsum(data, dtype=np.int32))

    def test_explicit_k(self, machine, rng):
        data = rng.integers(0, 100, (2, 1 << 14)).astype(np.int32)
        result = scan_single_gpu(machine.gpus[0], data, K=2)
        assert result.config["K"] == 2
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_three_phases_in_trace(self, machine, rng):
        data = rng.integers(0, 100, (2, 4096)).astype(np.int32)
        result = scan_single_gpu(machine.gpus[0], data)
        assert result.trace.phases() == ["stage1", "stage2", "stage3"]
        assert len(result.trace.kernel_records()) == 3

    def test_memory_released(self, machine, rng):
        gpu = machine.gpus[0]
        before = gpu.pool.used
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        scan_single_gpu(gpu, data)
        assert gpu.pool.used == before

    def test_throughput_properties(self, machine, rng):
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        result = scan_single_gpu(machine.gpus[0], data)
        assert result.elements == 4 * 4096
        assert result.throughput_gelems > 0
        assert "scan-sp" in result.summary()

    @pytest.mark.parametrize("op,ref", [
        ("add", lambda d: np.cumsum(d, axis=-1, dtype=d.dtype)),
        ("max", lambda d: np.maximum.accumulate(d, axis=-1)),
        ("min", lambda d: np.minimum.accumulate(d, axis=-1)),
        ("or", lambda d: np.bitwise_or.accumulate(d, axis=-1)),
        ("xor", lambda d: np.bitwise_xor.accumulate(d, axis=-1)),
    ])
    def test_operators(self, machine, rng, op, ref):
        data = rng.integers(0, 1000, (2, 2048)).astype(np.int32)
        result = scan_single_gpu(machine.gpus[0], data, operator=op)
        np.testing.assert_array_equal(result.output, ref(data))

    @given(
        log_n=st.integers(min_value=4, max_value=13),
        log_g=st.integers(min_value=0, max_value=4),
        k=st.sampled_from([None, 1, 2, 4]),
        inclusive=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_reference(self, log_n, log_g, k, inclusive, seed):
        gpu = GPU(0, KEPLER_K80)
        rng = np.random.default_rng(seed)
        data = rng.integers(-1000, 1000, (1 << log_g, 1 << log_n)).astype(np.int64)
        result = scan_single_gpu(gpu, data, inclusive=inclusive, K=k)
        expected = (
            inclusive_scan(data, axis=-1) if inclusive else exclusive_scan(data, axis=-1)
        )
        np.testing.assert_array_equal(result.output, expected)

    def test_wraparound_consistency(self, machine, rng):
        """int32 overflow must wrap identically to the numpy reference."""
        data = rng.integers(2**30, 2**31 - 1, (2, 1024)).astype(np.int32)
        with np.errstate(over="ignore"):
            result = scan_single_gpu(machine.gpus[0], data)
            expected = np.cumsum(data, axis=1, dtype=np.int32)
        np.testing.assert_array_equal(result.output, expected)


class TestPlanSelection:
    def test_default_k_is_premise_maximum(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 20, G=1)
        executor = ScanSP(machine.gpus[0])
        plan = executor.plan_for(problem)
        # K maximal => the feasibility bound N/(Lx*P) or Eq.1, whichever binds.
        assert plan.stage1.params.K >= 1
        assert plan.stage1.bx * plan.chunk_size == problem.N

    def test_small_problem_shrinks_template(self, machine, rng):
        data = rng.integers(0, 10, (1, 64)).astype(np.int32)
        result = scan_single_gpu(machine.gpus[0], data)
        np.testing.assert_array_equal(result.output[0], np.cumsum(data[0], dtype=np.int32))
