"""Tests for the roofline cost model and the trace composition rules."""

import pytest

from repro.gpusim.arch import KEPLER_K80
from repro.gpusim.costmodel import CostModel, CostModelParams, KernelCostInput
from repro.gpusim.events import KernelRecord, MPIRecord, Trace, TransferRecord
from repro.gpusim.occupancy import occupancy


def make_cost(blocks=208, bytes_rw=(1 << 20, 1 << 20), occ=None, **kwargs):
    occ = occ or occupancy(KEPLER_K80, 4, 64, 7168)
    return KernelCostInput(
        total_blocks=blocks,
        global_bytes_read=bytes_rw[0],
        global_bytes_written=bytes_rw[1],
        shuffle_instructions=kwargs.get("shuffles", 0),
        operator_applications=kwargs.get("ops", 0),
        addressing_instructions=kwargs.get("addr", 0),
        coalesced=kwargs.get("coalesced", True),
        occupancy=occ,
        bandwidth_scale=kwargs.get("bandwidth_scale", 1.0),
    )


class TestCostModel:
    def test_memory_time_linear_in_bytes(self):
        model = CostModel(KEPLER_K80)
        t1 = model.memory_time(make_cost(bytes_rw=(1 << 20, 0)))
        t2 = model.memory_time(make_cost(bytes_rw=(1 << 21, 0)))
        assert t2 == pytest.approx(2 * t1)

    def test_full_occupancy_hits_achievable_bandwidth(self):
        model = CostModel(KEPLER_K80)
        nbytes = 1 << 30
        t = model.memory_time(make_cost(blocks=208 * 64, bytes_rw=(nbytes, 0)))
        assert t == pytest.approx(nbytes / KEPLER_K80.achievable_bandwidth_bytes, rel=0.01)

    def test_low_occupancy_is_slower(self):
        model = CostModel(KEPLER_K80)
        low = occupancy(KEPLER_K80, 1, 64, 7168)  # 25% occupancy
        t_low = model.memory_time(make_cost(occ=low))
        t_high = model.memory_time(make_cost())
        assert t_low > t_high

    def test_small_grid_pays_wave_penalty(self):
        model = CostModel(KEPLER_K80)
        t_small = model.memory_time(make_cost(blocks=4))
        t_full = model.memory_time(make_cost(blocks=208))
        assert t_small > t_full

    def test_wave_utilisation_bounds(self):
        model = CostModel(KEPLER_K80)
        occ = occupancy(KEPLER_K80, 4, 64, 7168)
        for blocks in (1, 100, 208, 209, 5000):
            u = model.wave_utilisation(blocks, occ)
            assert 0 < u <= 1.0
        assert model.wave_utilisation(208, occ) == pytest.approx(1.0)

    def test_uncoalesced_penalty(self):
        model = CostModel(KEPLER_K80)
        t_bad = model.memory_time(make_cost(coalesced=False))
        t_good = model.memory_time(make_cost(coalesced=True))
        assert t_bad == pytest.approx(2 * t_good)

    def test_bandwidth_scale(self):
        model = CostModel(KEPLER_K80)
        t_solo = model.memory_time(make_cost())
        t_shared = model.memory_time(make_cost(bandwidth_scale=0.9))
        assert t_shared == pytest.approx(t_solo / 0.9)

    def test_compute_term_can_dominate(self):
        model = CostModel(KEPLER_K80)
        cost = make_cost(bytes_rw=(64, 0), ops=10**9)
        assert model.kernel_time(cost) == pytest.approx(
            model.compute_time(cost) + KEPLER_K80.kernel_launch_overhead_s
        )

    def test_launch_overhead_floor(self):
        model = CostModel(KEPLER_K80)
        cost = make_cost(bytes_rw=(0, 0))
        assert model.kernel_time(cost) == KEPLER_K80.kernel_launch_overhead_s

    def test_latency_hiding_floor(self):
        params = CostModelParams(min_latency_hiding=0.25)
        model = CostModel(KEPLER_K80, params)
        tiny_occ = occupancy(KEPLER_K80, 1, 255, 49152)
        assert model.latency_hiding_factor(tiny_occ) >= 0.25


def kernel_record(phase, lane, time_s):
    return KernelRecord(
        name="k", phase=phase, lane=lane, time_s=time_s, gpu_id=0,
        grid=(1, 1), block=(1, 1), global_bytes_read=0, global_bytes_written=0,
        shuffle_instructions=0, operator_applications=0,
        blocks_per_sm=1, warp_occupancy=1.0,
    )


class TestTraceComposition:
    def test_same_lane_serialises(self):
        trace = Trace()
        trace.add(kernel_record("s1", "gpu:0", 1.0))
        trace.add(kernel_record("s1", "gpu:0", 2.0))
        assert trace.phase_time("s1") == pytest.approx(3.0)

    def test_different_lanes_overlap(self):
        trace = Trace()
        trace.add(kernel_record("s1", "gpu:0", 1.0))
        trace.add(kernel_record("s1", "gpu:1", 2.5))
        assert trace.phase_time("s1") == pytest.approx(2.5)

    def test_phases_sum(self):
        trace = Trace()
        trace.add(kernel_record("s1", "gpu:0", 1.0))
        trace.add(kernel_record("s2", "gpu:0", 2.0))
        assert trace.total_time() == pytest.approx(3.0)
        assert trace.breakdown() == {"s1": 1.0, "s2": 2.0}

    def test_phase_order_is_first_appearance(self):
        trace = Trace()
        trace.add(kernel_record("b", "gpu:0", 1.0))
        trace.add(kernel_record("a", "gpu:0", 1.0))
        trace.add(kernel_record("b", "gpu:1", 1.0))
        assert trace.phases() == ["b", "a"]

    def test_record_type_filters(self):
        trace = Trace()
        trace.add(kernel_record("s", "gpu:0", 1.0))
        trace.add(TransferRecord(phase="t", lane="pcie0.0", time_s=0.1,
                                 src_gpu=0, dst_gpu=1, nbytes=100, kind="p2p"))
        trace.add(MPIRecord(phase="m", lane="ib", time_s=0.2, op="gather",
                            comm_size=4, nbytes=50))
        assert len(trace.kernel_records()) == 1
        assert len(trace.transfer_records()) == 1
        assert len(trace.mpi_records()) == 1
        assert trace.total_bytes_moved() == 150

    def test_empty_phase_time_zero(self):
        assert Trace().phase_time("nothing") == 0.0

    def test_merge(self):
        a, b = Trace(), Trace()
        a.add(kernel_record("s", "gpu:0", 1.0))
        b.add(kernel_record("s", "gpu:1", 2.0))
        a.merge(b)
        assert a.phase_time("s") == 2.0
