"""Tests for the system topology (Figure 2's machine model)."""

import pytest

from repro.errors import TopologyError
from repro.gpusim.arch import PASCAL_P100
from repro.interconnect.topology import SystemTopology


class TestStructure:
    def test_tsubame_kfc_counts(self, machine):
        assert machine.total_gpus == 8
        assert machine.gpus_per_node == 8
        assert machine.networks_per_node == 2
        assert machine.gpus_per_network == 4

    def test_multi_node(self, cluster):
        assert cluster.num_nodes == 2
        assert cluster.total_gpus == 16

    def test_slots_are_dense_node_major(self, cluster):
        slots = [cluster.slot(i) for i in range(16)]
        assert slots[0].node == 0 and slots[0].network == 0 and slots[0].index == 0
        assert slots[7].node == 0 and slots[7].network == 1 and slots[7].index == 3
        assert slots[8].node == 1 and slots[8].network == 0

    def test_graph_connectivity(self, machine):
        import networkx as nx

        assert nx.is_connected(machine.graph)
        # GPU -> PCIe switch -> host is the route between networks.
        path = machine.route(0, 4)
        assert "host0" in path

    def test_bad_indices_rejected(self, machine):
        with pytest.raises(TopologyError):
            machine.gpu(99)
        with pytest.raises(TopologyError):
            machine.gpus_in_network(0, 5)
        with pytest.raises(TopologyError):
            machine.gpus_in_node(3)

    def test_invalid_shape_rejected(self):
        with pytest.raises(TopologyError):
            SystemTopology(0, 1, 1)


class TestReachability:
    def test_same_network_is_p2p(self, machine):
        assert machine.p2p_capable(0, 1)
        assert machine.p2p_capable(0, 3)

    def test_cross_network_not_p2p(self, machine):
        assert not machine.p2p_capable(0, 4)
        assert machine.same_node(0, 4)

    def test_cross_node(self, cluster):
        assert not cluster.same_node(0, 8)
        assert not cluster.p2p_capable(0, 8)

    def test_same_pcie_network_symmetry(self, machine):
        for a in range(8):
            for b in range(8):
                assert machine.same_pcie_network(a, b) == machine.same_pcie_network(b, a)


class TestSelection:
    def test_select_w4_v4_one_network(self, machine):
        (group,) = machine.select_gpus(4, 4, 1)
        assert len(group) == 4
        nets = {machine.slot(g).network for g in group}
        assert nets == {0}

    def test_select_w8_v4_two_networks(self, machine):
        (group,) = machine.select_gpus(8, 4, 1)
        nets = {machine.slot(g).network for g in group}
        assert nets == {0, 1}

    def test_select_w2_v2_spreads_boards(self, machine):
        """Picking one die per K80 board avoids boost throttling."""
        (group,) = machine.select_gpus(2, 2, 1)
        boards = {machine.board_of(g) for g in group}
        assert len(boards) == 2

    def test_select_multi_node(self, cluster):
        groups = cluster.select_gpus(4, 4, 2)
        assert len(groups) == 2
        assert {cluster.slot(g).node for g in groups[0]} == {0}
        assert {cluster.slot(g).node for g in groups[1]} == {1}

    def test_w_not_multiple_of_v(self, machine):
        with pytest.raises(TopologyError, match="multiple"):
            machine.select_gpus(6, 4, 1)

    def test_too_many_nodes(self, machine):
        with pytest.raises(TopologyError):
            machine.select_gpus(4, 4, 2)

    def test_too_many_networks(self, machine):
        with pytest.raises(TopologyError):
            machine.select_gpus(8, 2, 1)  # would need Y=4 networks

    def test_too_many_gpus_per_network(self, machine):
        with pytest.raises(TopologyError):
            machine.select_gpus(8, 8, 1)


class TestBoards:
    def test_board_pairs(self, machine):
        assert machine.board_of(0) == machine.board_of(1)
        assert machine.board_of(0) != machine.board_of(2)
        assert machine.board_of(2) == machine.board_of(3)

    def test_single_die_arch_has_no_pairs(self):
        topo = SystemTopology(1, 2, 4, arch=PASCAL_P100)
        assert topo.board_of(0) != topo.board_of(1)

    def test_activate_derates_shared_boards(self, machine):
        g0, g1, g2 = machine.gpu(0), machine.gpu(1), machine.gpu(2)
        contention = g0.cost_model.params.dual_die_contention
        with machine.activate([g0, g1, g2]):
            assert g0.bandwidth_scale == contention  # shares board with g1
            assert g1.bandwidth_scale == contention
            assert g2.bandwidth_scale == 1.0  # board-mate g3 idle
        assert g0.bandwidth_scale == 1.0  # restored

    def test_activate_solo_gpu_unaffected(self, machine):
        g0 = machine.gpu(0)
        with machine.activate([g0]):
            assert g0.bandwidth_scale == 1.0

    def test_activate_restores_on_exception(self, machine):
        g0, g1 = machine.gpu(0), machine.gpu(1)
        with pytest.raises(RuntimeError):
            with machine.activate([g0, g1]):
                raise RuntimeError("boom")
        assert g0.bandwidth_scale == 1.0

    def test_spread_selection_order(self, machine):
        spread = machine.spread_gpus_in_network(0, 0, 2)
        assert [g.id for g in spread] == [0, 2]
        full = machine.spread_gpus_in_network(0, 0, 4)
        assert [g.id for g in full] == [0, 1, 2, 3]

    def test_spread_overflow_rejected(self, machine):
        with pytest.raises(TopologyError):
            machine.spread_gpus_in_network(0, 0, 5)
