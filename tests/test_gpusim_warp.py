"""Warp-level shuffle/scan simulation tests (lane-exact semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.gpusim.warp import (
    shfl_down,
    shfl_idx,
    shfl_up,
    shfl_xor,
    warp_exclusive_scan,
    warp_inclusive_scan,
    warp_reduce,
    warp_scan_cost,
)
from repro.primitives.operators import ADD, MAX


class TestShuffles:
    def test_shfl_up_keeps_low_lanes(self):
        lanes = np.arange(8)
        out = shfl_up(lanes, 3, width=8)
        np.testing.assert_array_equal(out[:3], [0, 1, 2])  # own values kept
        np.testing.assert_array_equal(out[3:], [0, 1, 2, 3, 4])

    def test_shfl_down_keeps_high_lanes(self):
        lanes = np.arange(8)
        out = shfl_down(lanes, 2, width=8)
        np.testing.assert_array_equal(out[:6], [2, 3, 4, 5, 6, 7])
        np.testing.assert_array_equal(out[6:], [6, 7])  # own values kept

    def test_shfl_zero_delta_identity(self):
        lanes = np.arange(32)
        np.testing.assert_array_equal(shfl_up(lanes, 0), lanes)
        np.testing.assert_array_equal(shfl_down(lanes, 0), lanes)

    def test_shfl_idx_broadcast(self):
        lanes = np.arange(8) * 10
        out = shfl_idx(lanes, 5, width=8)
        np.testing.assert_array_equal(out, np.full(8, 50))

    def test_shfl_idx_gather(self):
        lanes = np.arange(8) * 10
        srcs = np.array([7, 6, 5, 4, 3, 2, 1, 0])
        np.testing.assert_array_equal(shfl_idx(lanes, srcs, width=8), srcs * 10)

    def test_shfl_idx_out_of_range(self):
        with pytest.raises(ConfigurationError):
            shfl_idx(np.arange(8), 8, width=8)

    def test_shfl_xor_butterfly(self):
        lanes = np.arange(8)
        out = shfl_xor(lanes, 1, width=8)
        np.testing.assert_array_equal(out, [1, 0, 3, 2, 5, 4, 7, 6])

    def test_shfl_xor_escaping_mask(self):
        with pytest.raises(ConfigurationError):
            shfl_xor(np.arange(4), 4, width=4)

    def test_batched_warps(self, rng):
        lanes = rng.integers(0, 100, (5, 3, 32))
        out = shfl_up(lanes, 1)
        np.testing.assert_array_equal(out[..., 1:], lanes[..., :-1])
        np.testing.assert_array_equal(out[..., 0], lanes[..., 0])

    def test_wrong_lane_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            shfl_up(np.arange(16), 1, width=32)


class TestWarpScan:
    @pytest.mark.parametrize("pattern", ["lf", "ks"])
    @pytest.mark.parametrize("width", [4, 8, 32])
    def test_inclusive_matches_cumsum(self, pattern, width, rng):
        lanes = rng.integers(-50, 50, (10, width)).astype(np.int64)
        out, _ = warp_inclusive_scan(lanes, ADD, width=width, pattern=pattern)
        np.testing.assert_array_equal(out, np.cumsum(lanes, axis=-1))

    @pytest.mark.parametrize("pattern", ["lf", "ks"])
    def test_exclusive_shifts_with_identity(self, pattern, rng):
        lanes = rng.integers(0, 50, (4, 32)).astype(np.int64)
        out, _ = warp_exclusive_scan(lanes, ADD, pattern=pattern)
        np.testing.assert_array_equal(out[..., 0], 0)
        np.testing.assert_array_equal(out[..., 1:], np.cumsum(lanes, axis=-1)[..., :-1])

    def test_figure4_didactic_case(self):
        """The paper's Figure 4 uses warpSize=4 for clarity."""
        lanes = np.array([3, 1, 4, 1], dtype=np.int64)
        out, cost = warp_inclusive_scan(lanes, ADD, width=4, pattern="lf")
        np.testing.assert_array_equal(out, [3, 4, 8, 9])
        assert cost.steps == 2  # log2(4) stages

    def test_max_operator(self, rng):
        lanes = rng.integers(-100, 100, (6, 32)).astype(np.int32)
        out, _ = warp_inclusive_scan(lanes, MAX)
        np.testing.assert_array_equal(out, np.maximum.accumulate(lanes, axis=-1))

    def test_unknown_pattern(self):
        with pytest.raises(ConfigurationError):
            warp_inclusive_scan(np.arange(32), ADD, pattern="zigzag")

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40)
    def test_property_all_widths(self, log_w, seed):
        rng = np.random.default_rng(seed)
        width = 1 << log_w
        lanes = rng.integers(-1000, 1000, (3, width)).astype(np.int64)
        out, _ = warp_inclusive_scan(lanes, ADD, width=width, pattern="lf")
        np.testing.assert_array_equal(out, np.cumsum(lanes, axis=-1))


class TestWarpReduce:
    @pytest.mark.parametrize("width", [2, 8, 32])
    def test_all_lanes_hold_total(self, width, rng):
        lanes = rng.integers(0, 100, (7, width)).astype(np.int64)
        out, cost = warp_reduce(lanes, ADD, width=width)
        expected = lanes.sum(axis=-1, keepdims=True)
        np.testing.assert_array_equal(out, np.broadcast_to(expected, out.shape))
        assert cost.steps == width.bit_length() - 1


class TestCostAccounting:
    @pytest.mark.parametrize("pattern", ["lf", "ks"])
    @pytest.mark.parametrize("width", [2, 4, 8, 16, 32])
    def test_closed_form_matches_execution(self, pattern, width, rng):
        """warp_scan_cost must agree with what execution actually reports —
        the invariant the analytic estimate path rests on."""
        lanes = rng.integers(0, 10, (2, width)).astype(np.int64)
        _, inc_cost = warp_inclusive_scan(lanes, ADD, width=width, pattern=pattern)
        assert inc_cost == warp_scan_cost(width, pattern, exclusive=False)
        _, exc_cost = warp_exclusive_scan(lanes, ADD, width=width, pattern=pattern)
        assert exc_cost == warp_scan_cost(width, pattern, exclusive=True)

    def test_lf_work_leq_ks(self):
        for width in (8, 16, 32):
            lf = warp_scan_cost(width, "lf")
            ks = warp_scan_cost(width, "ks")
            assert lf.steps == ks.steps  # both minimum depth
            assert lf.shuffles <= ks.shuffles or width <= 4
