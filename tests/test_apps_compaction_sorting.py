"""Tests for the compaction and sorting scan applications."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.compaction import compact, partition_stable, select_indices
from repro.apps.sorting import radix_sort, split_by_bit
from repro.errors import ConfigurationError
from repro.interconnect.topology import tsubame_kfc


class TestSelectIndices:
    def test_addresses_are_dense_ranks(self, machine):
        mask = np.array([[1, 0, 1, 1, 0, 0, 1, 0]], dtype=bool)
        addr, counts, _ = select_indices(mask, machine)
        assert counts[0] == 4
        np.testing.assert_array_equal(addr[0][mask[0]], [0, 1, 2, 3])

    def test_batched(self, machine, rng):
        mask = rng.integers(0, 2, (4, 64)).astype(bool)
        addr, counts, _ = select_indices(mask, machine)
        np.testing.assert_array_equal(counts, mask.sum(axis=1))
        for g in range(4):
            np.testing.assert_array_equal(
                addr[g][mask[g]], np.arange(counts[g])
            )

    def test_rejects_float_mask(self, machine):
        with pytest.raises(ConfigurationError):
            select_indices(np.zeros((1, 8), dtype=np.float32), machine)


class TestCompact:
    def test_matches_numpy_filter(self, machine, rng):
        streams = rng.integers(-100, 100, (8, 256)).astype(np.int32)
        compacted, result = compact(streams, lambda x: x > 0, machine)
        for row, out in zip(streams, compacted):
            np.testing.assert_array_equal(out, row[row > 0])
        assert result.total_time_s > 0

    def test_all_and_none_kept(self, machine, rng):
        streams = rng.integers(0, 100, (2, 64)).astype(np.int32)
        all_kept, _ = compact(streams, lambda x: x >= 0, machine)
        none_kept, _ = compact(streams, lambda x: x < 0, machine)
        for row, out in zip(streams, all_kept):
            np.testing.assert_array_equal(out, row)
        for out in none_kept:
            assert out.size == 0

    def test_predicate_shape_check(self, machine, rng):
        streams = rng.integers(0, 10, (2, 64)).astype(np.int32)
        with pytest.raises(ConfigurationError, match="predicate"):
            compact(streams, lambda x: x[0] > 0, machine)

    @given(
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=-50, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_random(self, log_n, seed, threshold):
        machine = tsubame_kfc()
        rng = np.random.default_rng(seed)
        streams = rng.integers(-100, 100, (2, 1 << log_n)).astype(np.int32)
        compacted, _ = compact(streams, lambda x: x >= threshold, machine)
        for row, out in zip(streams, compacted):
            np.testing.assert_array_equal(out, row[row >= threshold])


class TestPartition:
    def test_stable_partition(self, machine):
        streams = np.array([[5, 2, 8, 1, 9, 4, 7, 3]], dtype=np.int32)
        out, counts, _ = partition_stable(streams, lambda x: x < 5, machine)
        np.testing.assert_array_equal(out[0], [2, 1, 4, 3, 5, 8, 9, 7])
        assert counts[0] == 4

    def test_batched_partition(self, machine, rng):
        streams = rng.integers(0, 100, (4, 128)).astype(np.int32)
        out, counts, _ = partition_stable(streams, lambda x: x % 2 == 0, machine)
        for g in range(4):
            row = streams[g]
            expected = np.concatenate([row[row % 2 == 0], row[row % 2 == 1]])
            np.testing.assert_array_equal(out[g], expected)
            assert counts[g] == (row % 2 == 0).sum()


class TestSplitAndSort:
    def test_split_by_bit(self, machine):
        keys = np.array([[3, 0, 2, 1, 6, 5, 4, 7]], dtype=np.int32)
        out, _ = split_by_bit(keys, 0, machine)
        # bit0==0 (even) first, stable: 0 2 6 4, then odd: 3 1 5 7.
        np.testing.assert_array_equal(out[0], [0, 2, 6, 4, 3, 1, 5, 7])

    def test_radix_sort_matches_numpy(self, machine, rng):
        keys = rng.integers(0, 1 << 10, (4, 256)).astype(np.int32)
        sorted_keys, results = radix_sort(keys, bits=10, topology=machine)
        np.testing.assert_array_equal(sorted_keys, np.sort(keys, axis=1))
        assert len(results) == 10

    def test_bits_autodetected(self, machine, rng):
        keys = rng.integers(0, 100, (2, 64)).astype(np.int64)
        sorted_keys, results = radix_sort(keys, topology=machine)
        np.testing.assert_array_equal(sorted_keys, np.sort(keys, axis=1))
        assert len(results) == 7  # 99 needs 7 bits

    def test_negative_keys_rejected(self, machine):
        with pytest.raises(ConfigurationError, match="non-negative"):
            radix_sort(np.array([[-1, 2, 3, 4]]), topology=machine)

    def test_float_keys_rejected(self, machine):
        with pytest.raises(ConfigurationError, match="integer"):
            radix_sort(np.array([[1.5, 2.5]]), topology=machine)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_property_sorts(self, seed):
        machine = tsubame_kfc()
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 1 << 8, (2, 128)).astype(np.int32)
        sorted_keys, _ = radix_sort(keys, bits=8, topology=machine)
        np.testing.assert_array_equal(sorted_keys, np.sort(keys, axis=1))
