"""Documentation consistency checks.

Docs rot silently; these tests keep the load-bearing references honest:
the public exports appear in the API reference, the README's commands
exist, DESIGN's module map points at real files, and the example table
lists real scripts.
"""

from pathlib import Path


import repro

ROOT = Path(__file__).parent.parent


class TestApiDoc:
    def test_all_top_level_exports_documented(self):
        api = (ROOT / "docs" / "api.md").read_text()
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert name in api, f"repro.{name} missing from docs/api.md"

    def test_cli_commands_documented(self):
        from repro.cli import _build_parser

        api = (ROOT / "docs" / "api.md").read_text()
        readme = (ROOT / "README.md").read_text()
        parser = _build_parser()
        subparsers = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        for command in subparsers.choices:
            assert command in api or command in readme, (
                f"CLI command {command!r} undocumented"
            )


class TestReadme:
    def test_example_table_lists_real_files(self):
        readme = (ROOT / "README.md").read_text()
        for line in readme.splitlines():
            if line.startswith("| `") and line.endswith(" |") and ".py" in line:
                name = line.split("`")[1]
                assert (ROOT / "examples" / name).exists(), name

    def test_every_example_listed(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, f"{script.name} missing from README"

    def test_install_command_present(self):
        readme = (ROOT / "README.md").read_text()
        assert "pip install -e ." in readme
        assert "pytest tests/" in readme
        assert "pytest benchmarks/" in readme


class TestDesign:
    def test_module_map_points_at_real_packages(self):
        design = (ROOT / "DESIGN.md").read_text()
        for package in ("gpusim", "interconnect", "mpisim", "primitives",
                        "core", "baselines", "bench", "apps"):
            assert f"repro.{package}" in design or f"repro/{package}" in design
            assert (ROOT / "src" / "repro" / package).is_dir()

    def test_experiment_index_names_real_benches(self):
        design = (ROOT / "DESIGN.md").read_text()
        for slug in ("bench_table3_occupancy", "bench_fig09_mps",
                     "bench_fig10_mppc", "bench_fig11_g1", "bench_fig12_batch",
                     "bench_fig13_multinode", "bench_fig14_breakdown"):
            assert slug in design
            assert (ROOT / "benchmarks" / f"{slug}.py").exists()


class TestExperiments:
    def test_every_result_artifact_referenced_exists_or_generable(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        import re

        for match in re.finditer(r"`([a-z0-9_]+\.txt)`", experiments):
            name = match.group(1)
            bench_sources = " ".join(
                p.read_text() for p in (ROOT / "benchmarks").glob("bench_*.py")
            )
            assert name.removesuffix(".txt") in bench_sources, (
                f"EXPERIMENTS references {name} but no bench writes it"
            )

    def test_docs_directory_complete(self):
        for doc in ("architecture.md", "tuning.md", "simulator.md",
                    "api.md", "paper_map.md", "faq.md", "serving.md",
                    "observability.md", "cluster.md", "control.md"):
            assert (ROOT / "docs" / doc).exists()
