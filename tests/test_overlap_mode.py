"""Tests for the communication/computation overlap mode."""

import numpy as np
import pytest

from repro.core.multi_gpu import ScanMPS
from repro.core.params import NodeConfig, ProblemConfig
from repro.core.prioritized import ScanMPPC


class TestOverlap:
    def test_functional_result_unchanged(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        plain = ScanMPS(machine, node).run(data)
        overlapped = ScanMPS(machine, node, overlap=True).run(data)
        np.testing.assert_array_equal(plain.output, overlapped.output)

    def test_phases_collapse(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        result = ScanMPS(machine, node, overlap=True).run(data)
        phases = result.trace.phases()
        assert "aux_gather" not in phases and "aux_scatter" not in phases
        assert phases == ["stage1", "stage2", "stage3"]

    def test_overlap_never_slower(self, machine, rng):
        """Hiding transfers behind kernels can only help (max vs sum)."""
        node = NodeConfig.from_counts(W=8, V=4)
        problem = ProblemConfig.from_sizes(N=1 << 20, G=1 << 6)
        plain = ScanMPS(machine, node).estimate(problem)
        overlapped = ScanMPS(machine, node, overlap=True).estimate(problem)
        assert overlapped.total_time_s <= plain.total_time_s + 1e-15

    def test_overlap_helps_mppc_batches(self, machine):
        """With pure-P2P traffic the aux copies hide entirely behind the
        payload kernels."""
        node = NodeConfig.from_counts(W=8, V=4)
        problem = ProblemConfig.from_sizes(N=1 << 16, G=1 << 12)
        plain = ScanMPPC(machine, node).estimate(problem)
        overlapped = ScanMPPC(machine, node, overlap=True).estimate(problem)
        assert overlapped.total_time_s < plain.total_time_s
        # The transfer time vanished from the critical path: the saving is
        # about the two dropped transfer phases.
        saved = plain.total_time_s - overlapped.total_time_s
        gather = plain.breakdown.get("aux_gather", 0.0)
        scatter = plain.breakdown.get("aux_scatter", 0.0)
        assert saved == pytest.approx(gather + scatter, rel=0.2)

    def test_cannot_hide_host_staged_cliff(self, machine):
        """Overlap is not magic: the W=8 host-staged per-problem copies
        dwarf the kernels, so they still dominate the merged phase."""
        node = NodeConfig.from_counts(W=8, V=4)
        problem = ProblemConfig.from_sizes(N=1 << 13, G=1 << 15)
        plain = ScanMPS(machine, node).estimate(problem)
        overlapped = ScanMPS(machine, node, overlap=True).estimate(problem)
        assert overlapped.total_time_s > 0.5 * plain.total_time_s
