"""Exporter round-trips: files that external tools actually accept.

The Chrome-trace and Prometheus exporters feed third-party consumers
(Perfetto, a scraper), so the contract is *parse-level*: a written trace
file must load back as valid JSON whose events pass the structural rules
a viewer relies on (complete X slices, per-thread timestamp monotonicity,
records nested inside their phase slice), and every Prometheus line must
match the text-exposition grammar — including label values containing
backslashes, quotes and newlines, which must escape rather than corrupt
the stream. Both exporters must also behave on the disabled path
(``NullRegistry`` / no spans): empty output, not errors.
"""

import json
import math
import re

import numpy as np
import pytest

from repro import obs
from repro.core.session import ScanSession
from repro.interconnect.topology import tsubame_kfc
from repro.obs.export import (
    HOST_PID,
    SIM_PID,
    _prom_escape,
    _prom_labels,
    chrome_trace,
    render_prometheus,
    write_chrome_trace,
)
from repro.obs.registry import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import SessionReport


@pytest.fixture
def enabled():
    obs.reset()
    obs.enable()
    try:
        yield obs.registry()
    finally:
        obs.disable()
        obs.reset()


@pytest.fixture
def served(enabled, rng):
    session = ScanSession(tsubame_kfc(1))
    data = rng.integers(-40, 90, (8, 1 << 11)).astype(np.int64)
    result = session.scan(data, proposal="mps", W=4, V=4)
    return result, obs.finished_spans()


class TestChromeTraceRoundTrip:
    def test_written_file_loads_and_validates(self, served, tmp_path):
        result, spans = served
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), trace=result.trace, spans=spans)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events

        slices = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(slices) + len(metas) == len(events)  # only X + M used
        for e in slices:
            assert e["pid"] in (SIM_PID, HOST_PID)
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["name"], str) and e["name"]

        # Per-thread timestamps never go backwards (same-lane records
        # serialise; phases run back to back).
        by_tid = {}
        for e in slices:
            by_tid.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        for key, stamps in by_tid.items():
            assert stamps == sorted(stamps), key

        # Both timelines made it into one file.
        assert any(e["pid"] == SIM_PID for e in slices)
        assert any(e["pid"] == HOST_PID for e in slices)

    def test_records_nest_inside_their_phase_slice(self, served):
        result, _ = served
        events = chrome_trace(trace=result.trace)["traceEvents"]
        phase_bounds = {
            e["name"]: (e["ts"], e["ts"] + e["dur"])
            for e in events if e.get("cat") == "phase"
        }
        records = [e for e in events if e.get("cat") == "record"]
        assert records
        for e in records:
            lo, hi = phase_bounds[e["args"]["phase"]]
            assert e["ts"] >= lo - 1e-6
            assert e["ts"] + e["dur"] <= hi + 1e-6

    def test_slice_set_reproduces_breakdown(self, served):
        result, _ = served
        events = chrome_trace(trace=result.trace)["traceEvents"]
        phase_durs = {e["name"]: e["dur"] for e in events
                      if e.get("cat") == "phase"}
        assert phase_durs == {
            phase: pytest.approx(t * 1e6)
            for phase, t in result.trace.breakdown().items()
        }

    def test_no_spans_exports_empty_host_timeline(self, served):
        result, _ = served
        events = chrome_trace(trace=result.trace, spans=[])["traceEvents"]
        assert all(e["pid"] == SIM_PID for e in events)

    def test_disabled_path_produces_valid_empty_payload(self, tmp_path):
        # The null span never starts, so the span exporter drops it; no
        # trace at all still writes a loadable file.
        from repro.obs.tracing import NULL_SPAN
        path = tmp_path / "empty.json"
        write_chrome_trace(str(path), trace=None, spans=[NULL_SPAN])
        payload = json.loads(path.read_text())
        assert payload["traceEvents"] == []


#: Text-exposition grammar: a TYPE header or `name{labels} value`.
#: Label values may contain anything except raw newline / unescaped `"`.
PROM_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$")
PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*\})?"
    r" \S+$"
)


def assert_parses(exposition: str) -> None:
    for line in exposition.splitlines():
        assert PROM_TYPE.match(line) or PROM_SAMPLE.match(line), line
        if PROM_SAMPLE.match(line):
            float(line.rsplit(" ", 1)[1])  # the value must be a number


class TestPrometheusRoundTrip:
    def test_real_registry_parses_line_by_line(self, served):
        exposition = render_prometheus(obs.registry())
        assert exposition.endswith("\n")
        assert_parses(exposition)
        assert "# TYPE scan_calls counter" in exposition
        assert "scan_latency_s_count" in exposition

    def test_null_registry_renders_empty(self):
        assert render_prometheus(NULL_REGISTRY) == ""

    def test_label_escaping_survives_hostile_values(self):
        reg = MetricsRegistry()
        hostile = 'back\\slash "quoted"\nnewline'
        reg.counter("hostile.series", where=hostile).inc(3)
        exposition = render_prometheus(reg)
        # One header + one sample: the newline did NOT split the sample.
        assert len(exposition.splitlines()) == 2
        assert_parses(exposition)
        sample = exposition.splitlines()[1]
        assert '\\\\slash' in sample and '\\"quoted\\"' in sample \
            and "\\nnewline" in sample

    def test_escape_is_order_correct_and_reversible(self):
        hostile = 'a\\b"c\nd'
        escaped = _prom_escape(hostile)
        assert escaped == 'a\\\\b\\"c\\nd'
        # Standard exposition unescaping recovers the original value.
        unescaped = (escaped.replace("\\\\", "\x00")
                     .replace('\\"', '"').replace("\\n", "\n")
                     .replace("\x00", "\\"))
        assert unescaped == hostile

    def test_labels_render_sorted_pairs(self):
        rendered = _prom_labels([("kind", "p2p"), ("node", "0")])
        assert rendered == '{kind="p2p",node="0"}'
        assert _prom_labels([]) == ""


class TestHistogramWindowSemantics:
    def test_lifetime_totals_survive_window_eviction(self):
        hist = Histogram("h", window=8)
        values = list(range(1, 21))                  # 20 > window of 8
        for v in values:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 20                # lifetime, not window
        assert summary["sum"] == float(sum(values))
        assert summary["mean"] == sum(values) / 20
        assert summary["min"] == 1.0 and summary["max"] == 20.0
        assert summary["window_count"] == 8
        # Percentiles describe only the surviving window (13..20).
        assert summary["p50"] >= 13.0

    def test_window_count_equals_count_before_eviction(self):
        hist = Histogram("h", window=8)
        for v in range(5):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == summary["window_count"] == 5

    def test_null_instrument_summary_has_parity(self):
        assert set(NULL_INSTRUMENT.summary()) == set(Histogram("h").summary())

    def test_session_report_flags_evicted_percentiles(self):
        lat = Histogram("lat", window=4)
        sim = Histogram("sim", window=4)
        for i in range(10):
            lat.observe(1e-3 * (i + 1))
            sim.observe(5e-4)
        report = SessionReport(
            calls=10, warm_calls=9, cold_calls=1, cached_configurations=1,
            latency=lat.summary(), sim_time=sim.summary(), pool={},
        )
        text = report.format()
        assert "percentiles over the last 4 of 10 lifetime samples" in text
        assert "totals are exact" in text

    def test_prometheus_count_is_lifetime_after_eviction(self):
        reg = MetricsRegistry()
        hist = reg.histogram("evicted.series", window=4)
        for v in range(10):
            hist.observe(float(v))
        exposition = render_prometheus(reg)
        assert "evicted_series_count 10" in exposition
        assert f"evicted_series_sum {float(sum(range(10)))}" in exposition
        assert_parses(exposition)

    def test_histogram_summary_is_json_serializable(self):
        hist = Histogram("h", window=4)
        hist.observe(1.0)
        payload = json.loads(json.dumps(hist.summary()))
        assert payload["window_count"] == 1
        assert math.isfinite(payload["p99"])
