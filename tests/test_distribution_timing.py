"""Tests for the end-to-end distribution/collection timing extension."""

import numpy as np
import pytest

from repro import scan
from repro.interconnect.transfer import TransferEngine


class TestDistributionTiming:
    def test_phases_wrap_timed_region(self, machine, rng):
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        result = scan(
            data, topology=machine, proposal="mps", W=4, V=4,
            include_distribution=True,
        )
        phases = result.trace.phases()
        assert phases[0] == "distribute"
        assert phases[-1] == "collect"
        assert result.breakdown["distribute"] > 0
        assert result.breakdown["collect"] > 0

    def test_default_excludes_distribution(self, machine, rng):
        """The paper's methodology: data resident before the timed region."""
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        result = scan(data, topology=machine, proposal="mps", W=4, V=4)
        assert "distribute" not in result.trace.phases()

    def test_distribution_scales_with_payload(self, machine, rng):
        small = scan(
            rng.integers(0, 10, (2, 1 << 12)).astype(np.int32),
            topology=machine, proposal="sp", include_distribution=True,
        )
        large = scan(
            rng.integers(0, 10, (2, 1 << 16)).astype(np.int32),
            topology=machine, proposal="sp", include_distribution=True,
        )
        assert large.breakdown["distribute"] > small.breakdown["distribute"]

    def test_same_node_uploads_serialise(self, machine, rng):
        """4 GPUs on one node share the host-memory lane: distributing to
        them costs ~4x one portion, not ~1x."""
        data = rng.integers(0, 10, (4, 1 << 16)).astype(np.int32)
        one = scan(data, topology=machine, proposal="sp",
                   include_distribution=True)
        four = scan(data, topology=machine, proposal="mps", W=4, V=4,
                    include_distribution=True)
        # Same total bytes either way; the 4-way split adds only the three
        # extra per-copy latencies (no bandwidth gain from more GPUs).
        extra_latency = 3 * TransferEngine(machine).params.hostcopy_latency_s
        assert four.breakdown["distribute"] == pytest.approx(
            one.breakdown["distribute"] + extra_latency, rel=1e-6
        )

    def test_functional_output_unaffected(self, machine, rng):
        data = rng.integers(0, 100, (4, 1 << 12)).astype(np.int32)
        result = scan(data, topology=machine, proposal="mppc", W=8, V=4,
                      include_distribution=True)
        np.testing.assert_array_equal(
            result.output, np.cumsum(data, axis=1, dtype=np.int32)
        )


class TestHostDeviceEngine:
    def test_h2d_d2h_records(self, machine):
        from repro.gpusim.events import Trace

        engine = TransferEngine(machine)
        trace = Trace()
        up = engine.host_to_device(trace, "d", machine.gpu(0), 1 << 20)
        down = engine.device_to_host(trace, "c", machine.gpu(0), 1 << 20)
        assert up.kind == "h2d" and down.kind == "d2h"
        assert up.lane == "host0" and down.lane == "host0"
        # D2H is modelled slightly faster than H2D (typical PCIe asymmetry).
        assert down.time_s < up.time_s
