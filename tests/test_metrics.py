"""Tests for trace-derived performance metrics and the ASCII timeline."""

import numpy as np
import pytest

from repro import scan
from repro.gpusim.arch import KEPLER_K80
from repro.gpusim.metrics import (
    ascii_timeline,
    communication_share,
    kernel_metrics,
    summarize,
)
from repro.gpusim.events import Trace


class TestKernelMetrics:
    def test_bandwidth_below_achievable(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 16)).astype(np.int32)
        result = scan(data, topology=machine, proposal="sp")
        for km in kernel_metrics(result.trace, KEPLER_K80):
            assert 0 < km.achieved_bandwidth_gbs
            assert km.bandwidth_fraction <= 1.0 + 1e-9

    def test_stage13_near_achievable_at_scale(self, machine):
        from repro.core.params import ProblemConfig
        from repro.core.single_gpu import ScanSP

        problem = ProblemConfig.from_sizes(N=1 << 26, G=4)
        result = ScanSP(machine.gpus[0]).estimate(problem)
        stage1 = next(
            km for km in kernel_metrics(result.trace, KEPLER_K80)
            if km.name == "chunk_reduce"
        )
        assert stage1.bandwidth_fraction > 0.9  # memory-bound, saturated

    def test_scan_is_low_intensity(self, machine, rng):
        """The payload stages' arithmetic intensity is far below 1 op/byte:
        the premise that the whole problem is memory-bound. (Stage 2 can
        exceed 1 at tiny chunk counts — idle padded lanes still execute —
        but it moves a rounding error's worth of bytes.)"""
        data = rng.integers(0, 100, (4, 1 << 14)).astype(np.int32)
        result = scan(data, topology=machine, proposal="sp")
        for km in kernel_metrics(result.trace, KEPLER_K80):
            if km.name in ("chunk_reduce", "scan_add"):
                assert km.arithmetic_intensity < 1.0


class TestCommunicationShare:
    def test_sp_has_no_communication(self, machine, rng):
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        result = scan(data, topology=machine, proposal="sp")
        assert communication_share(result.trace) == 0.0

    def test_w8_small_n_is_communication_bound(self, machine, rng):
        """The Figure-9 cliff, restated as a metric: at W=8 with many
        problems the critical path is the host-staged aux traffic."""
        data = rng.integers(0, 100, (64, 1 << 13)).astype(np.int32)
        result = scan(data, topology=machine, proposal="mps", W=8, V=4)
        assert communication_share(result.trace) > 0.5

    def test_mppc_is_compute_bound(self, machine, rng):
        data = rng.integers(0, 100, (64, 1 << 13)).astype(np.int32)
        result = scan(data, topology=machine, proposal="mppc", W=8, V=4)
        assert communication_share(result.trace) < 0.5

    def test_empty_trace(self):
        assert communication_share(Trace()) == 0.0

    def test_single_pass_matches_per_phase_rescan(self, machine, rng):
        """The single-pass implementation must agree exactly with the
        definitional per-phase rescan on a multi-phase trace (Scan-MPS:
        stage1/aux_gather/stage2/aux_scatter/stage3, mixed kernel and
        transfer lanes, host-staged and dispatch records)."""
        from repro.gpusim.events import MPIRecord, TransferRecord

        def reference(trace):
            total = trace.total_time()
            if total <= 0:
                return 0.0
            comm = 0.0
            for phase in trace.phases():
                lanes, kinds = {}, {}
                for rec in trace.records:
                    if rec.phase != phase:
                        continue
                    lanes[rec.lane] = lanes.get(rec.lane, 0.0) + rec.time_s
                    is_comm = isinstance(
                        rec, (TransferRecord, MPIRecord)
                    ) and getattr(rec, "kind", "") != "dispatch"
                    kinds[rec.lane] = kinds.get(rec.lane, False) or is_comm
                if not lanes:
                    continue
                critical = max(lanes, key=lambda lane: lanes[lane])
                if kinds.get(critical, False):
                    comm += lanes[critical]
            return comm / total

        for proposal, kwargs in (
            ("mps", {"W": 4, "V": 4}),
            ("mps", {"W": 8, "V": 4}),
            ("mppc", {"W": 8, "V": 4}),
            ("sp", {}),
        ):
            data = rng.integers(0, 100, (16, 1 << 12)).astype(np.int32)
            result = scan(data, topology=machine, proposal=proposal, **kwargs)
            assert communication_share(result.trace) == reference(result.trace)


class TestSummarize:
    def test_bundle_fields(self, machine, rng):
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        result = scan(data, topology=machine, proposal="mps", W=4, V=4)
        s = summarize(result.trace, KEPLER_K80)
        assert s["kernel_count"] == 9  # 3 stages x (4 GPUs for 1+3, 1 for 2)
        assert s["total_time_s"] == pytest.approx(result.total_time_s)
        assert s["bytes_moved_offchip"] > 0
        assert s["busiest_kernel"] in ("chunk_reduce", "scan_add")


class TestEffectiveBandwidth:
    def test_reflects_payload_passes(self, machine):
        """effective_bandwidth = 2*payload/time: for the 3-pass kernel plan
        it sits below the DRAM rate by roughly the 2/3 pass ratio."""
        from repro.core.params import ProblemConfig
        from repro.core.single_gpu import ScanSP

        problem = ProblemConfig.from_sizes(N=1 << 26, G=4)
        result = ScanSP(machine.gpus[0]).estimate(problem)
        eff = result.effective_bandwidth_gbs
        achievable = machine.arch.achievable_bandwidth_bytes / 1e9
        assert 0.5 * achievable < eff < achievable


class TestTimeline:
    def test_renders_lanes_and_phases(self, machine, rng):
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        result = scan(data, topology=machine, proposal="mps", W=4, V=4)
        text = ascii_timeline(result.trace)
        assert "gpu:0" in text and "gpu:3" in text
        assert "#" in text and "ms" in text

    def test_empty(self):
        assert ascii_timeline(Trace()) == "(empty trace)"
