"""Tests for sliding-window aggregations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.windowed import moving_average, windowed_sums
from repro.errors import ConfigurationError
from repro.interconnect.topology import tsubame_kfc


def reference_windowed(row, window):
    out = np.empty(len(row), dtype=np.int64)
    for i in range(len(row)):
        out[i] = row[max(0, i - window + 1) : i + 1].sum()
    return out


class TestWindowedSums:
    def test_matches_reference(self, machine, rng):
        streams = rng.integers(-50, 50, (4, 256)).astype(np.int32)
        out, _ = windowed_sums(streams, 16, machine)
        for row, got in zip(streams, out):
            np.testing.assert_array_equal(got, reference_windowed(row, 16))

    def test_window_one_is_identity(self, machine, rng):
        streams = rng.integers(0, 100, (2, 64)).astype(np.int32)
        out, _ = windowed_sums(streams, 1, machine)
        np.testing.assert_array_equal(out, streams.astype(np.int64))

    def test_full_window_is_prefix_sum(self, machine, rng):
        streams = rng.integers(0, 100, (2, 64)).astype(np.int32)
        out, _ = windowed_sums(streams, 64, machine)
        np.testing.assert_array_equal(out, np.cumsum(streams, axis=1, dtype=np.int64))

    def test_no_int32_overflow(self, machine):
        streams = np.full((1, 1024), 2**24, dtype=np.int32)
        out, _ = windowed_sums(streams, 512, machine)
        assert out.dtype == np.int64
        assert out[0, -1] == 512 * 2**24

    def test_validation(self, machine, rng):
        streams = rng.integers(0, 9, (1, 32)).astype(np.int32)
        with pytest.raises(ConfigurationError):
            windowed_sums(streams, 0, machine)
        with pytest.raises(ConfigurationError):
            windowed_sums(streams, 64, machine)

    @given(
        window=st.integers(min_value=1, max_value=128),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_property(self, window, seed):
        machine = tsubame_kfc()
        rng = np.random.default_rng(seed)
        streams = rng.integers(-100, 100, (2, 128)).astype(np.int32)
        out, _ = windowed_sums(streams, window, machine)
        for row, got in zip(streams, out):
            np.testing.assert_array_equal(got, reference_windowed(row, window))


class TestMovingAverage:
    def test_constant_stream(self, machine):
        streams = np.full((1, 128), 7, dtype=np.int32)
        avg, _ = moving_average(streams, 8, machine)
        np.testing.assert_allclose(avg, 7.0)

    def test_partial_window_normalisation(self, machine):
        streams = np.arange(1, 9, dtype=np.int32)[None, :]
        avg, _ = moving_average(streams, 4, machine)
        np.testing.assert_allclose(avg[0, :4], [1.0, 1.5, 2.0, 2.5])
        np.testing.assert_allclose(avg[0, 4], (2 + 3 + 4 + 5) / 4)
