"""Tests for the device-level batched segmented scan."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.core.segmented_device import scan_segmented_device
from repro.interconnect.topology import tsubame_kfc
from repro.primitives.segmented import segmented_inclusive_scan, segments_to_flags


class TestSegmentedDevice:
    def test_matches_host_reference(self, machine, rng):
        lengths = [100, 28, 300, 84]  # sums to 512
        flags = segments_to_flags(np.asarray(lengths))
        data = rng.integers(-100, 100, 512).astype(np.int64)
        out, result = scan_segmented_device(data, flags, machine.gpus[0])
        np.testing.assert_array_equal(
            out[0], segmented_inclusive_scan(data, flags)
        )
        assert result.proposal == "scan-segmented"

    def test_batched_rows_with_distinct_flags(self, machine, rng):
        g, n = 4, 256
        data = rng.integers(0, 50, (g, n)).astype(np.int32)
        flags = (rng.random((g, n)) < 0.05)
        flags[:, 0] = True
        out, _ = scan_segmented_device(data, flags, machine.gpus[0])
        for row, frow, orow in zip(data, flags, out):
            np.testing.assert_array_equal(
                orow, segmented_inclusive_scan(row.astype(np.int64), frow).astype(np.int32)
            )

    def test_single_segment_is_plain_scan(self, machine, rng):
        data = rng.integers(0, 100, 1024).astype(np.int64)
        flags = np.zeros(1024, dtype=bool)
        out, _ = scan_segmented_device(data, flags, machine.gpus[0])
        np.testing.assert_array_equal(out[0], np.cumsum(data))

    def test_every_position_a_head(self, machine, rng):
        data = rng.integers(0, 100, 128).astype(np.int64)
        flags = np.ones(128, dtype=bool)
        out, _ = scan_segmented_device(data, flags, machine.gpus[0])
        np.testing.assert_array_equal(out[0], data)

    def test_trace_has_three_passes(self, machine, rng):
        data = rng.integers(0, 10, 256).astype(np.int64)
        flags = np.zeros(256, dtype=bool)
        _, result = scan_segmented_device(data, flags, machine.gpus[0])
        names = [r.name for r in result.trace.kernel_records()]
        assert names.count("chunk_reduce") == 2  # add pass + max pass
        assert names.count("segment_fixup") == 1

    def test_float_rejected(self, machine):
        with pytest.raises(ConfigurationError, match="integer"):
            scan_segmented_device(
                np.zeros(16, dtype=np.float32), np.zeros(16, dtype=bool),
                machine.gpus[0],
            )

    def test_flag_shape_mismatch(self, machine):
        with pytest.raises(ConfigurationError, match="match"):
            scan_segmented_device(
                np.zeros(16, dtype=np.int32), np.zeros(8, dtype=bool),
                machine.gpus[0],
            )

    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=40),
                         min_size=1, max_size=10),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_random_segments(self, lengths, seed):
        machine = tsubame_kfc()
        total = sum(lengths)
        padded = 1 << (total - 1).bit_length() if total > 1 else 1
        lengths = list(lengths)
        if padded > total:
            lengths.append(padded - total)
        flags = segments_to_flags(np.asarray(lengths))
        rng = np.random.default_rng(seed)
        data = rng.integers(-100, 100, padded).astype(np.int64)
        out, _ = scan_segmented_device(data, flags, machine.gpus[0])
        np.testing.assert_array_equal(out[0], segmented_inclusive_scan(data, flags))
