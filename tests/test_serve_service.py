"""Service-level tests: admission, coalescing, flush policy, accounting,
backpressure, and failure handling (splits + chaos).

The service is a *front-end*: coalescing must be output-invisible
(identical results to individual scans), latencies must sum without
double counting, and a failing batch must degrade to per-request
failures only after retry and bisection are exhausted.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.health import AttemptRecord, RetryPolicy
from repro.core.session import ScanSession
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    FailoverExhaustedError,
    RequestFailedError,
)
from repro.gpusim.faults import DeviceDown, FaultSchedule
from repro.interconnect.topology import tsubame_kfc
from repro.obs.slo import SLOMonitor, availability_objective
from repro.primitives.sequential import inclusive_scan
from repro.serve import ScanService, SimClock, poisson_workload, replay, solo_baseline
from repro.serve.replay import Request


@pytest.fixture
def service(machine):
    return ScanSession(machine).service(max_batch=8, max_wait_s=1e-3)


def rows(rng, count, n=1 << 10, dtype=np.int32):
    return [rng.integers(-40, 90, n).astype(dtype) for _ in range(count)]


class TestAdmission:
    def test_submit_returns_queued_ticket(self, service, rng):
        ticket = service.submit(rows(rng, 1)[0])
        assert ticket.status == "queued"
        assert not ticket.done
        assert service.depth == 1
        with pytest.raises(ConfigurationError, match="still queued"):
            ticket.result()

    def test_rejects_2d_and_empty_requests(self, service):
        with pytest.raises(ConfigurationError, match="1-D"):
            service.submit(np.zeros((2, 8), dtype=np.int32))
        with pytest.raises(ConfigurationError, match="non-empty"):
            service.submit(np.zeros(0, dtype=np.int32))

    def test_backpressure_rejection(self, machine, rng):
        service = ScanSession(machine).service(max_batch=64, max_queue=4)
        for r in rows(rng, 4):
            service.submit(r)
        with pytest.raises(BackpressureError, match="4/4"):
            service.submit(rows(rng, 1)[0])
        assert service.rejected == 1
        # Rejected requests are not enqueued; the queue drains clean.
        service.drain()
        assert service.served == 4

    def test_compatibility_keying(self, service, rng):
        """Different size/dtype/operator/inclusivity never coalesce."""
        service.submit(rng.integers(0, 9, 1 << 10).astype(np.int32))
        service.submit(rng.integers(0, 9, 1 << 11).astype(np.int32))
        service.submit(rng.integers(0, 9, 1 << 10).astype(np.int64))
        service.submit(rng.integers(0, 9, 1 << 10).astype(np.int32),
                       operator="max")
        service.submit(rng.integers(0, 9, 1 << 10).astype(np.int32),
                       inclusive=False)
        assert len([q for q in service._queues.values() if q]) == 5
        service.drain()
        assert len(service.batches) == 5
        assert all(b.requests == 1 for b in service.batches)


class TestCoalescing:
    def test_results_identical_to_individual_scans(self, machine, rng):
        """The coalescing front door must be output-invisible."""
        service = ScanSession(machine).service(max_batch=16)
        data = rows(rng, 10)
        tickets = [service.submit(d) for d in data]
        service.drain()
        solo_session = ScanSession(tsubame_kfc(1))
        for d, t in zip(data, tickets):
            expected = solo_session.scan(d[None, :]).output[0]
            np.testing.assert_array_equal(t.result(), expected)

    def test_max_batch_triggers_flush(self, service, rng):
        tickets = [service.submit(d) for d in rows(rng, 8)]
        # max_batch=8: the 8th submit flushes without drain().
        assert all(t.done for t in tickets)
        assert service.batches[0].reason == "max_batch"
        assert service.batches[0].requests == 8

    def test_row_count_padded_to_power_of_two(self, service, rng):
        tickets = [service.submit(d) for d in rows(rng, 5)]
        service.drain()
        batch = service.batches[0]
        assert batch.requests == 5 and batch.g == 8
        assert service.padded_rows == 3
        for t in tickets:
            assert t.batch_requests == 5 and t.batch_g == 8

    def test_ragged_stragglers_identity_padded(self, service, rng):
        """Non-power-of-two sizes pad up and join the pow2 queue."""
        odd = rng.integers(-40, 90, 1000).astype(np.int32)
        even = rng.integers(-40, 90, 1024).astype(np.int32)
        t_odd = service.submit(odd)
        t_even = service.submit(even)
        assert t_odd.key == t_even.key and t_odd.key.n == 1024
        service.drain()
        assert len(service.batches) == 1
        np.testing.assert_array_equal(t_odd.result(), inclusive_scan(odd))
        assert t_odd.result().shape == (1000,)
        np.testing.assert_array_equal(t_even.result(), inclusive_scan(even))

    def test_operator_identity_padding_for_mul_and_min(self, machine, rng):
        service = ScanSession(machine).service(max_batch=16)
        a = rng.integers(1, 3, 100).astype(np.int64)
        b = rng.integers(-90, 90, 200).astype(np.int64)
        ta = service.submit(a, operator="mul")
        tb = service.submit(b, operator="min")
        service.drain()
        np.testing.assert_array_equal(ta.result(), inclusive_scan(a, op="mul"))
        np.testing.assert_array_equal(tb.result(), inclusive_scan(b, op="min"))


class TestFlushPolicy:
    def test_max_wait_flush_ordering(self, machine, rng):
        """Queues flush at their oldest request's deadline, in deadline
        order, each at its exact deadline time."""
        service = ScanSession(machine).service(max_batch=64, max_wait_s=1e-3)
        a = service.submit(rng.integers(0, 9, 1 << 10).astype(np.int32), at=0.0)
        b = service.submit(rng.integers(0, 9, 1 << 11).astype(np.int32),
                           at=0.0004)
        # Neither deadline has elapsed yet.
        service.advance_to(0.0009)
        assert a.status == "queued" and b.status == "queued"
        service.advance_to(0.01)
        assert a.done and b.done
        first, second = service.batches
        assert first.key.n == 1 << 10 and second.key.n == 1 << 11
        assert first.flush_s == pytest.approx(1e-3)
        assert second.flush_s == pytest.approx(1.4e-3)
        assert first.reason == "max_wait" and second.reason == "max_wait"
        assert a.queue_wait_s == pytest.approx(1e-3)
        assert b.queue_wait_s == pytest.approx(1e-3)

    def test_late_arrival_joins_next_batch(self, machine, rng):
        """A request arriving after a deadline fires lands in a fresh
        batch — the elapsed queue flushed at its own deadline first."""
        service = ScanSession(machine).service(max_batch=64, max_wait_s=1e-3)
        service.submit(rng.integers(0, 9, 1 << 10).astype(np.int32), at=0.0)
        late = service.submit(rng.integers(0, 9, 1 << 10).astype(np.int32),
                              at=0.005)
        assert len(service.batches) == 1  # deadline fired during advance
        assert late.status == "queued"
        service.drain()
        assert len(service.batches) == 2
        assert late.done and late.queue_wait_s == 0.0

    def test_clock_is_monotone(self, service, rng):
        service.submit(rows(rng, 1)[0], at=1.0)
        with pytest.raises(ConfigurationError, match="backwards"):
            service.submit(rows(rng, 1)[0], at=0.5)
        with pytest.raises(ConfigurationError, match="advance the clock by"):
            SimClock().advance(-1.0)


class TestAccounting:
    def test_latencies_sum_no_double_counting(self, machine, rng):
        """sum(per-request latency) == sum(batch sim time) + sum(queue
        wait) — per batch this is exact by construction (the share
        remainder lands on the last request, so D/R division drift cannot
        accumulate); across batches only float re-association remains,
        bounded at rounding precision. Double counting (a request charged
        two batches, a batch charged twice) would show up orders of
        magnitude above both bounds."""
        import math

        service = ScanSession(machine).service(max_batch=8, max_wait_s=1e-3)
        tickets = []
        t = 0.0
        for i, d in enumerate(rows(rng, 13)):  # 8 + 5: one odd batch
            tickets.append(service.submit(d, at=t))
            t += 1e-4
        service.drain()
        assert all(t.done for t in tickets)
        # Exact per-batch identity: execution shares re-sum to the batch
        # simulated time with zero drift, odd batch width included.
        for batch in service.batches:
            members = [t for t in tickets if t.batch_index == batch.index]
            assert batch.requests in (8, 5)
            assert sum(t.exec_share_s for t in members) == batch.sim_time_s
        total_latency = math.fsum(t.latency_s for t in tickets)
        total_wait = math.fsum(t.queue_wait_s for t in tickets)
        total_exec = math.fsum(b.sim_time_s for b in service.batches)
        assert total_latency == pytest.approx(total_wait + total_exec,
                                              rel=1e-12, abs=0)
        assert service.total_latency_s == pytest.approx(total_latency)
        assert service.total_queue_wait_s == pytest.approx(total_wait)
        assert service.total_exec_s == pytest.approx(total_exec)

    def test_exec_shares_sum_to_batch_time(self, machine, rng):
        service = ScanSession(machine).service(max_batch=8)
        tickets = [service.submit(d) for d in rows(rng, 5)]
        service.drain()
        batch = service.batches[0]
        shares = sum(t.exec_share_s for t in tickets)
        assert shares == batch.sim_time_s  # exact by remainder assignment
        for t in tickets:
            assert t.batch_time_s == batch.sim_time_s
            assert t.completion_s == batch.flush_s + batch.sim_time_s

    def test_stats_snapshot(self, machine, rng):
        service = ScanSession(machine).service(max_batch=4)
        for d in rows(rng, 6):
            service.submit(d)
        service.drain()
        stats = service.stats()
        assert stats["submitted"] == 6
        assert stats["served"] == 6
        assert stats["batches"] == 2
        assert stats["mean_batch_size"] == 3.0
        assert stats["latency"]["count"] == 6
        assert stats["queued"] == 0


class TestObservability:
    def test_metrics_and_spans(self, machine, rng):
        obs.enable()
        obs.reset()
        try:
            service = ScanSession(machine).service(max_batch=4, max_queue=6)
            for d in rows(rng, 4):  # 4th submit fires the max_batch flush
                service.submit(d)
            # Refill to max_queue across two keys so neither queue reaches
            # max_batch before the admission check trips.
            for d in rows(rng, 3) + rows(rng, 3, n=1 << 11):
                service.submit(d)
            with pytest.raises(BackpressureError):
                service.submit(rows(rng, 1)[0])
            service.drain()
            snap = obs.registry().snapshot()
            assert snap["serve.submitted"][""] == 10
            assert snap["serve.served"][""] == 10
            assert snap["serve.rejected"][""] == 1
            assert snap["serve.flushes"]["reason=max_batch"] == 1
            assert snap["serve.flushes"]["reason=drain"] == 2
            assert snap["serve.batch_size"][""]["count"] == 3
            assert snap["serve.queue_depth"][""] == 0.0
            names = [s.name for root in obs.finished_spans()
                     for s in root.walk()]
            assert "serve.coalesce" in names and "serve.flush" in names
        finally:
            obs.disable()
            obs.reset()

    def test_disabled_obs_costs_nothing_but_still_serves(self, machine, rng):
        assert not obs.is_enabled()
        service = ScanSession(machine).service(max_batch=4)
        t = service.submit(rows(rng, 1)[0])
        service.drain()
        assert t.done
        assert service.latency.count == 1  # plain accounting always on


class TestFailureHandling:
    class _FlakySession(ScanSession):
        """Fails any batch wider than ``fail_above`` rows; counts calls."""

        def __init__(self, machine, fail_above):
            super().__init__(machine)
            self.fail_above = fail_above
            self.attempted_widths = []

        def scan(self, data, **kwargs):
            self.attempted_widths.append(data.shape[0])
            if data.shape[0] > self.fail_above:
                raise FailoverExhaustedError(
                    f"injected: batches wider than {self.fail_above} fail"
                )
            return super().scan(data, **kwargs)

    def test_failed_batch_splits_before_failing_requests(self, machine, rng):
        """A batch that exhausts failover bisects until its halves pass."""
        session = self._FlakySession(machine, fail_above=2)
        service = session.service(max_batch=8)
        data = rows(rng, 8)
        tickets = [service.submit(d) for d in data]
        assert all(t.done for t in tickets)
        for d, t in zip(data, tickets):
            np.testing.assert_array_equal(t.result(), inclusive_scan(d))
        assert service.splits == 3  # 8 -> 4+4 -> 2+2+2+2
        assert len(service.batches) == 4
        assert all(t.splits == 2 for t in tickets)
        assert session.attempted_widths[:3] == [8, 4, 2]

    def test_singleton_failure_marks_only_that_request(self, machine, rng):
        session = self._FlakySession(machine, fail_above=0)
        service = session.service(max_batch=2)
        t1 = service.submit(rows(rng, 1)[0])
        t2 = service.submit(rows(rng, 1)[0])
        assert t1.failed and t2.failed
        assert service.failed == 2
        with pytest.raises(RequestFailedError, match="request 0 failed"):
            t1.result()
        assert isinstance(t1.error, FailoverExhaustedError)

    def test_split_budget_bounds_recursion(self, machine, rng):
        session = self._FlakySession(machine, fail_above=0)
        session.health.policy = RetryPolicy(max_batch_splits=1)
        service = session.service(max_batch=8)
        tickets = [service.submit(d) for d in rows(rng, 8)]
        assert all(t.failed for t in tickets)
        # One bisection level allowed: 8 -> 4+4, then the 4s fail whole.
        assert session.attempted_widths == [8, 4, 4]


@pytest.mark.chaos
class TestServiceChaos:
    def test_gpu_death_mid_batch_fails_over_per_request(self, rng):
        """A GPU dying while a coalesced batch runs must be invisible to
        every rider: correct outputs, failover visible on each ticket."""
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        service = session.service(max_batch=8, proposal="mps", W=4, V=4)
        machine.install_faults(
            FaultSchedule([DeviceDown(at_call=3, gpu_id=0)])
        )
        data = rows(rng, 8, n=1 << 11, dtype=np.int64)
        tickets = [service.submit(d) for d in data]
        assert all(t.done for t in tickets)
        for d, t in zip(data, tickets):
            np.testing.assert_array_equal(t.result(), inclusive_scan(d))
        # The session failed over inside the batch; every rider sees it.
        for t in tickets:
            assert t.failover is not None
            assert t.failover["attempts"] >= 2
        assert session.health.failovers == 1
        assert machine.gpus[0].offline

    def test_chaos_batch_latency_still_sums(self, rng):
        """Failover backoff lands in the batch trace, so the accounting
        invariant must survive a degraded batch unchanged."""
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        service = session.service(max_batch=4, proposal="mps", W=4, V=4)
        machine.install_faults(
            FaultSchedule([DeviceDown(at_call=2, gpu_id=1)])
        )
        tickets = [service.submit(d, at=i * 1e-4)
                   for i, d in enumerate(rows(rng, 4, n=1 << 11))]
        service.drain()
        assert all(t.done for t in tickets)
        import math

        total_latency = math.fsum(t.latency_s for t in tickets)
        total_wait = math.fsum(t.queue_wait_s for t in tickets)
        total_exec = math.fsum(b.sim_time_s for b in service.batches)
        assert total_latency == pytest.approx(total_wait + total_exec,
                                              rel=1e-12, abs=0)
        assert sum(t.exec_share_s for t in tickets) == total_exec
        # Backoff made the batch strictly slower than a healthy one.
        healthy = ScanSession(tsubame_kfc(1))
        baseline = healthy.scan(
            np.stack([d for d in rows(rng, 4, n=1 << 11)]),
            proposal="mps", W=4, V=4,
        ).total_time_s
        assert service.batches[0].sim_time_s > baseline


class TestReplayDriver:
    def test_replay_verifies_and_reports(self, machine):
        session = ScanSession(machine)
        service = session.service(max_batch=16, max_wait_s=5e-4)
        workload = poisson_workload(24, sizes_log2=(9, 10), rate=20000.0,
                                    seed=3)
        report = replay(service, workload)
        assert report["verified"] == 24
        assert report["request_failures"] == 0
        assert report["batches"] == len(service.batches)
        assert report["coalesced_sim_s"] == pytest.approx(service.total_exec_s)

    def test_replay_counts_backpressure(self, machine):
        service = ScanSession(machine).service(max_batch=64, max_queue=8,
                                               max_wait_s=10.0)
        workload = poisson_workload(12, sizes_log2=(9,), rate=0.0, seed=3)
        report = replay(service, workload)
        assert report["rejected_by_backpressure"] == 4
        assert report["verified"] == 8

    def test_coalescing_beats_solo_on_small_bursts(self, machine):
        """The amortisation story at the acceptance shape: 64 small
        requests, coalesced vs one-at-a-time, >= 2x."""
        workload = poisson_workload(64, sizes_log2=(12,), rate=0.0, seed=0)
        service = ScanSession(machine).service(max_batch=64)
        report = replay(service, workload)
        solo = solo_baseline(ScanSession(tsubame_kfc(1)), workload)
        assert solo["solo_sim_s"] / report["coalesced_sim_s"] >= 2.0


class TestFlushReasonAccounting:
    def test_overfull_remainder_reflushes_as_max_batch(self, machine, rng):
        """Shrinking max_batch mid-run (the adaptive-policy pattern)
        leaves a deadline flush with an over-full remainder; the
        re-flushes fire *because of max_batch* and must be labelled so —
        carrying the triggering "max_wait" through skewed the
        serve.flushes counter."""
        obs.enable()
        obs.reset()
        try:
            service = ScanSession(machine).service(max_batch=64,
                                                   max_wait_s=1e-3)
            tickets = [service.submit(d, at=0.0) for d in rows(rng, 5)]
            service.max_batch = 2
            service.advance_to(0.01)
            # Deadline flush takes 2, the over-full remainder (3) re-flushes
            # 2 as max_batch, and the last singleton's own deadline fires.
            assert [b.reason for b in service.batches] == [
                "max_wait", "max_batch", "max_wait"
            ]
            snap = obs.registry().snapshot()
            assert snap["serve.flushes"]["reason=max_wait"] == 2
            assert snap["serve.flushes"]["reason=max_batch"] == 1
            assert all(t.done for t in tickets)
        finally:
            obs.disable()
            obs.reset()


class TestFailedRequestAccounting:
    class _ExhaustedSession(ScanSession):
        """Always exhausts failover, with a realistic attempt trail."""

        BACKOFFS = (1e-3, 2e-3, 4e-3)

        def scan(self, data, **kwargs):
            attempts = [
                AttemptRecord(attempt=i + 1, proposal="sp", node=None,
                              error_type="DeviceLostError",
                              error="injected", backoff_s=b)
                for i, b in enumerate(self.BACKOFFS)
            ]
            raise FailoverExhaustedError("injected exhaustion",
                                         attempts=attempts)

    def test_failed_tickets_charge_queue_wait_plus_attempted_time(
            self, machine, rng):
        """Failed requests are charged queue wait + their share of the
        attempted (backoff) time — not latency 0.0 — and complete at
        flush + attempted time."""
        session = self._ExhaustedSession(machine)
        session.health.policy = RetryPolicy(max_batch_splits=0)
        service = session.service(max_batch=4)
        tickets = [service.submit(d, at=i * 1e-4)
                   for i, d in enumerate(rows(rng, 3))]
        service.drain()
        assert all(t.failed for t in tickets)
        attempted = sum(self._ExhaustedSession.BACKOFFS)
        flush_s = service.clock.now
        assert sum(t.exec_share_s for t in tickets) == attempted
        for t in tickets:
            assert t.queue_wait_s == flush_s - t.arrival_s
            assert t.latency_s == t.queue_wait_s + t.exec_share_s
            assert t.latency_s > 0.0
            assert t.completion_s == pytest.approx(flush_s + attempted)
            assert t.batch_time_s == attempted
        # Failed latencies land in the histogram and the totals.
        assert service.latency.count == 3
        assert service.total_exec_s == pytest.approx(attempted)
        assert service.total_latency_s == pytest.approx(
            math.fsum(t.latency_s for t in tickets))

    def test_failure_slo_outcome_stamped_after_backoff(self, machine, rng):
        """The availability outcome lands at the simulated completion
        (flush + attempted backoff), not at flush time."""
        monitor = SLOMonitor([availability_objective("avail", 0.99)])
        session = self._ExhaustedSession(machine)
        session.health.policy = RetryPolicy(max_batch_splits=0)
        service = session.service(max_batch=2, slo=monitor)
        service.submit(rows(rng, 1)[0], at=1e-3)
        service.drain()
        flush_s = service.clock.now
        attempted = sum(self._ExhaustedSession.BACKOFFS)
        short, _ = monitor._windows["avail"]
        at_s, is_bad = short.events[-1]
        assert is_bad
        assert at_s == pytest.approx(flush_s + attempted)
        assert at_s > flush_s

    def test_invariant_holds_across_mixed_success_and_failure(
            self, machine, rng):
        """The no-double-counting invariant extends over failures:
        sum(latency) == sum(queue wait) + sum(exec wait) + sum(executed
        and attempted batch time)."""

        class _Flaky(ScanSession):
            def scan(self, data, **kwargs):
                if data.shape[0] > 2:
                    raise FailoverExhaustedError(
                        "wide batches fail",
                        attempts=[AttemptRecord(
                            attempt=1, proposal="sp", node=None,
                            error_type="DeviceLostError", error="injected",
                            backoff_s=3e-3)],
                    )
                return super().scan(data, **kwargs)

        session = _Flaky(machine)
        session.health.policy = RetryPolicy(max_batch_splits=0)
        service = session.service(max_batch=4)
        tickets = [service.submit(d, at=i * 1e-4)
                   for i, d in enumerate(rows(rng, 6))]
        service.drain()
        assert sum(t.failed for t in tickets) == 4  # the max_batch flush
        assert sum(t.done for t in tickets) == 2    # the drained tail
        total_latency = math.fsum(t.latency_s for t in tickets)
        total_wait = math.fsum(t.queue_wait_s for t in tickets)
        total_exec_wait = math.fsum(t.exec_wait_s for t in tickets)
        assert total_latency == pytest.approx(
            total_wait + total_exec_wait + service.total_exec_s,
            rel=1e-12, abs=0)
        assert service.total_latency_s == pytest.approx(total_latency)


class TestSerializedExecutor:
    def test_busy_executor_delays_next_batch(self, machine, rng):
        """With serialize_exec, two batches flushed back-to-back stack:
        the second's riders wait for the first to leave the executor."""
        service = ScanSession(machine).service(max_batch=2,
                                               serialize_exec=True)
        first = [service.submit(d) for d in rows(rng, 2)]
        second = [service.submit(d) for d in rows(rng, 2)]
        b1, b2 = service.batches
        assert b1.exec_wait_s == 0.0
        assert b2.exec_wait_s == pytest.approx(b1.sim_time_s)
        for t in first:
            assert t.exec_wait_s == 0.0
        for t in second:
            assert t.exec_wait_s == pytest.approx(b1.sim_time_s)
            assert t.completion_s == pytest.approx(
                b1.sim_time_s + b2.sim_time_s)
            assert t.latency_s == (t.queue_wait_s + t.exec_wait_s
                                   + t.exec_share_s)
        assert service.busy_until_s == pytest.approx(
            b1.sim_time_s + b2.sim_time_s)
        assert service.total_exec_wait_s == pytest.approx(
            2 * b1.sim_time_s)

    def test_default_overlapping_mode_unchanged(self, machine, rng):
        service = ScanSession(machine).service(max_batch=2)
        [service.submit(d) for d in rows(rng, 4)]
        assert all(b.exec_wait_s == 0.0 for b in service.batches)
        assert service.total_exec_wait_s == 0.0


class TestEviction:
    def test_evict_pending_returns_rows_and_marks_tickets(self, service, rng):
        data = rows(rng, 3)
        tickets = [service.submit(d) for d in data]
        pairs = service.evict_pending()
        assert [t for t, _ in pairs] == tickets
        assert all(t.status == "evicted" for t in tickets)
        for (_, row), d in zip(pairs, data):
            np.testing.assert_array_equal(row, d)
        assert service.depth == 0
        assert service.evicted == 3
        assert service.served == 0 and service.failed == 0
        with pytest.raises(RequestFailedError, match="evicted"):
            tickets[0].result()


class TestDeadlineEdge:
    def test_passed_deadline_flushes_at_now_not_backwards(self, machine, rng):
        """Shrinking max_wait mid-run leaves a queue head whose deadline
        already passed; the flush fires *now* (the max(deadline, now)
        path) — the clock never runs backwards."""
        service = ScanSession(machine).service(max_batch=64, max_wait_s=1.0)
        ticket = service.submit(rows(rng, 1)[0], at=0.0)
        service.advance_to(0.5)
        assert ticket.status == "queued"
        service.max_wait_s = 0.1  # head deadline is now 0.1 < clock 0.5
        service.advance_to(0.6)
        assert ticket.done
        batch = service.batches[0]
        assert batch.reason == "max_wait"
        assert batch.flush_s == 0.5  # fired immediately, not at 0.1
        assert ticket.queue_wait_s == 0.5
        assert service.clock.now == 0.6

    def test_multiple_passed_deadlines_flush_in_deadline_order(
            self, machine, rng):
        service = ScanSession(machine).service(max_batch=64, max_wait_s=1.0)
        b = service.submit(rng.integers(0, 9, 1 << 10).astype(np.int32),
                           at=0.0)
        a = service.submit(rng.integers(0, 9, 1 << 11).astype(np.int32),
                           at=0.2)
        service.advance_to(0.5)
        service.max_wait_s = 0.05  # both deadlines (0.05, 0.25) passed
        service.advance_to(0.5)
        assert a.done and b.done
        first, second = service.batches
        # b arrived first -> earlier deadline -> flushes first; both at now.
        assert first.key.n == 1 << 10 and second.key.n == 1 << 11
        assert first.flush_s == 0.5 and second.flush_s == 0.5

    def test_partial_flush_remainder_with_passed_deadline(self, machine, rng):
        """A partial (max_batch-shrunk) flush leaves a new queue head
        whose deadline already elapsed; it must flush at the current
        time, in order, without clock regression."""
        service = ScanSession(machine).service(max_batch=64, max_wait_s=0.3)
        tickets = [service.submit(d, at=0.01 * i)
                   for i, d in enumerate(rows(rng, 5))]
        service.max_batch = 2
        # First deadline (0.3) triggers a flush of 2; remainder heads'
        # deadlines (0.32, 0.34) are then <= now as the loop walks on.
        service.advance_to(0.4)
        assert all(t.done for t in tickets[:4])
        flush_times = [b.flush_s for b in service.batches]
        assert flush_times == sorted(flush_times)
        assert service.clock.now == 0.4

    @given(
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=2e-3, allow_nan=False),
            min_size=1, max_size=12),
        sizes_log2=st.lists(st.sampled_from([9, 10, 11]),
                            min_size=1, max_size=12),
        new_max_wait=st.floats(min_value=1e-5, max_value=2e-3,
                               allow_nan=False),
        new_max_batch=st.integers(min_value=1, max_value=4),
        shrink_after=st.integers(min_value=0, max_value=11),
    )
    @settings(max_examples=25, deadline=None)
    def test_schedule_property_monotone_flushes(self, offsets, sizes_log2,
                                                new_max_wait, new_max_batch,
                                                shrink_after):
        """Any schedule with a mid-run policy shrink keeps: monotone
        flush times, a monotone clock, every ticket terminal after a
        drain, and the accounting invariant."""
        rng = np.random.default_rng(0)
        service = ScanSession(tsubame_kfc(1)).service(max_batch=8,
                                                      max_wait_s=1e-3)
        arrivals = np.cumsum(offsets)
        tickets = []
        for i, (at, lg) in enumerate(zip(arrivals, sizes_log2 * 12)):
            if i == shrink_after:
                service.max_wait_s = new_max_wait
                service.max_batch = new_max_batch
            data = rng.integers(0, 50, 1 << lg).astype(np.int32)
            tickets.append(service.submit(data, at=float(at)))
        end = float(arrivals[-1]) + 5e-3
        service.advance_to(end)
        service.drain()
        assert all(t.done for t in tickets)
        assert service.clock.now == end
        flush_times = [b.flush_s for b in service.batches]
        assert flush_times == sorted(flush_times)
        # max_wait flushes never fire before the deadline that was
        # current when they fired... but never before their arrival.
        for b in service.batches:
            assert b.flush_s >= 0.0
        total_latency = math.fsum(t.latency_s for t in tickets)
        total_wait = math.fsum(t.queue_wait_s for t in tickets)
        assert total_latency == pytest.approx(
            total_wait + math.fsum(b.sim_time_s for b in service.batches),
            rel=1e-12, abs=0)


class TestReplayDeltas:
    def test_second_replay_reports_per_run_deltas(self, machine):
        """Replaying twice on one service (the restart/cluster pattern)
        must not double-count the first run in the second summary."""
        session = ScanSession(machine)
        service = session.service(max_batch=8, max_wait_s=5e-4)
        wl1 = poisson_workload(16, sizes_log2=(9, 10), rate=20000.0, seed=5)
        r1 = replay(service, wl1)
        shift = service.clock.now + 1e-3
        wl2 = [Request(at_s=r.at_s + shift, data=r.data, operator=r.operator,
                       inclusive=r.inclusive) for r in wl1]
        r2 = replay(service, wl2)
        for key in ("submitted", "served", "failed", "batches",
                    "mean_batch_size", "requests", "verified"):
            assert r2[key] == r1[key], key
        assert r2["submitted"] == 16  # not 32
        # Same schedule shape -> identical per-run accounting.
        assert r2["total_queue_wait_s"] == pytest.approx(
            r1["total_queue_wait_s"])
        assert r2["coalesced_sim_s"] == pytest.approx(r1["coalesced_sim_s"])
        assert r2["latency"]["count"] == 16
        # Lifetime counters still accumulate on the service itself.
        assert service.submitted == 32 and service.served == 32

    def test_fresh_service_deltas_match_lifetime_summary(self, machine):
        """On a fresh service the per-run summary is the lifetime
        summary — bit-identical distributions included (pinning the
        recorded bench baselines)."""
        service = ScanSession(machine).service(max_batch=8, max_wait_s=5e-4)
        wl = poisson_workload(20, sizes_log2=(9, 10), rate=30000.0, seed=6)
        report = replay(service, wl)
        stats = service.stats()
        assert report["latency"] == stats["latency"]
        assert report["batch_size"] == stats["batch_size"]
        assert report["submitted"] == stats["submitted"]
        assert report["total_exec_s"] == stats["total_exec_s"]
