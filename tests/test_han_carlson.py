"""Tests for the Han-Carlson hybrid prefix network."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.primitives.networks import (
    brent_kung_schedule,
    han_carlson_scan,
    han_carlson_schedule,
    kogge_stone_schedule,
    schedule_depth,
    schedule_work,
)
from repro.primitives.operators import MAX


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 512])
    def test_computes_scan(self, n, rng):
        data = rng.integers(-100, 100, n).astype(np.int64)
        np.testing.assert_array_equal(han_carlson_scan(data), np.cumsum(data))

    def test_batched(self, rng):
        data = rng.integers(0, 100, (4, 7, 32)).astype(np.int64)
        np.testing.assert_array_equal(han_carlson_scan(data), np.cumsum(data, axis=-1))

    def test_max_operator(self, rng):
        data = rng.integers(-100, 100, 128).astype(np.int32)
        np.testing.assert_array_equal(
            han_carlson_scan(data, MAX), np.maximum.accumulate(data)
        )

    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40)
    def test_property(self, log_n, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-1000, 1000, 1 << log_n).astype(np.int64)
        np.testing.assert_array_equal(han_carlson_scan(data), np.cumsum(data))


class TestStructure:
    @pytest.mark.parametrize("n", [8, 32, 256])
    def test_depth_logn_plus_one(self, n):
        log_n = n.bit_length() - 1
        assert schedule_depth(han_carlson_schedule(n)) == log_n + 1

    @pytest.mark.parametrize("n", [16, 64, 512])
    def test_work_between_bk_and_ks(self, n):
        """The whole point of the hybrid: KS-class depth at reduced work."""
        hc = schedule_work(han_carlson_schedule(n))
        ks = schedule_work(kogge_stone_schedule(n))
        bk = schedule_work(brent_kung_schedule(n))
        assert bk < hc < ks

    def test_no_write_conflicts(self):
        for step in han_carlson_schedule(64):
            dsts = [d for d, _ in step]
            assert len(set(dsts)) == len(dsts)

    def test_degenerate_sizes(self):
        assert han_carlson_schedule(1) == ()
        assert han_carlson_schedule(2) == (((1, 0),),)
