"""Performance-shape assertions: the qualitative claims of the paper's
evaluation section, checked against the simulator at paper scale (analytic
estimate path). These are the machine-checked form of EXPERIMENTS.md."""

import pytest

from repro.baselines import CUB, CUDPP, LIGHTSCAN, MODERNGPU, THRUST
from repro.bench.runner import best_estimate_over_k
from repro.core.params import NodeConfig, ProblemConfig
from repro.interconnect.topology import tsubame_kfc


@pytest.fixture(scope="module")
def machine():
    return tsubame_kfc(1)


@pytest.fixture(scope="module")
def cluster():
    return tsubame_kfc(8)


def ours(topology, n, g, proposal, node=None):
    problem = ProblemConfig.from_sizes(N=1 << n, G=1 << g)
    return best_estimate_over_k(topology, problem, proposal, node)


class TestFigure9Shapes:
    def test_w_scales_on_p2p(self, machine):
        """W=1 -> 2 -> 4 improves throughput (no host-memory traffic)."""
        n, g = 20, 8
        t1 = ours(machine, n, g, "sp").total_time_s
        t2 = ours(machine, n, g, "mps", NodeConfig.from_counts(W=2, V=2)).total_time_s
        t4 = ours(machine, n, g, "mps", NodeConfig.from_counts(W=4, V=4)).total_time_s
        assert t2 < t1
        assert t4 < t2

    def test_w8_cliff_at_small_n(self, machine):
        """W=8 collapses when G is large (host-staged copies per problem)."""
        node8 = NodeConfig.from_counts(W=8, V=4)
        node4 = NodeConfig.from_counts(W=4, V=4)
        t8 = ours(machine, 13, 15, "mps", node8).total_time_s
        t4 = ours(machine, 13, 15, "mps", node4).total_time_s
        assert t8 > 10 * t4

    def test_w8_recovers_as_g_shrinks(self, machine):
        """'As fast as N grows and G decreases ... raising performance'."""
        node8 = NodeConfig.from_counts(W=8, V=4)
        tp = {}
        for n in (13, 20, 28):
            result = ours(machine, n, 28 - n, "mps", node8)
            tp[n] = result.throughput_gelems
        assert tp[13] < tp[20] < tp[28]

    def test_w8_beats_w4_at_largest_n(self, machine):
        """At n=28 (G=1) the aux traffic is tiny; 8 GPUs win again."""
        t8 = ours(machine, 28, 0, "mps", NodeConfig.from_counts(W=8, V=4)).total_time_s
        t4 = ours(machine, 28, 0, "mps", NodeConfig.from_counts(W=4, V=4)).total_time_s
        assert t8 < t4


class TestFigure10Shapes:
    def test_mppc_flat_across_n(self, machine):
        """MP-PC has no host staging: throughput stays near-constant."""
        node = NodeConfig.from_counts(W=8, V=4)
        tps = [ours(machine, n, 28 - n, "mppc", node).throughput_gelems
               for n in (13, 18, 23, 27)]
        assert max(tps) / min(tps) < 1.25

    def test_w8v4_beats_w4v2(self, machine):
        """More GPUs per problem with P2P-only traffic helps."""
        t84 = ours(machine, 20, 8, "mppc", NodeConfig.from_counts(W=8, V=4)).total_time_s
        t42 = ours(machine, 20, 8, "mppc", NodeConfig.from_counts(W=4, V=2)).total_time_s
        assert t84 < t42

    def test_mppc_beats_mps_at_w8_batch(self, machine):
        node = NodeConfig.from_counts(W=8, V=4)
        t_mppc = ours(machine, 16, 12, "mppc", node).total_time_s
        t_mps = ours(machine, 16, 12, "mps", node).total_time_s
        assert t_mppc < t_mps


class TestFigure11Shapes:
    def test_multi_gpu_unimpressive_at_g1_small_n(self, machine):
        """'Multi-GPU proposals cannot be competitive for small problem
        sizes when G=1' — and CUB wins there."""
        result = ours(machine, 13, 0, "sp")
        cub_time = CUB.time_single(1 << 13)
        assert result.total_time_s > cub_time

    def test_sp_competitive_with_cub_at_large_n(self, machine):
        result = ours(machine, 28, 0, "sp")
        cub_time = CUB.time_single(1 << 28)
        ratio = cub_time / result.total_time_s
        assert 0.8 < ratio < 1.5  # paper: 1.04x average

    def test_multi_gpu_wins_at_g1_large_n(self, machine):
        node = NodeConfig.from_counts(W=8, V=4)
        t_multi = ours(machine, 28, 0, "mps", node).total_time_s
        t_sp = ours(machine, 28, 0, "sp").total_time_s
        assert t_multi < t_sp


class TestFigure12Shapes:
    def test_batch_speedups_decrease_with_n(self, machine):
        """'performance increases in Thrust, ModernGPU, CUB and LightScan
        libraries in line with the rise in N' -> our speedup shrinks."""
        node = NodeConfig.from_counts(W=8, V=4)
        speedups = []
        for n in (13, 20, 25):
            g = 28 - n
            t_ours = ours(machine, n, g, "mppc", node).total_time_s
            t_lib, _ = MODERNGPU.time_batch(1 << n, 1 << g)
            speedups.append(t_lib / t_ours)
        assert speedups[0] > speedups[1] > speedups[2]

    def test_we_beat_every_library_on_batches(self, machine):
        node = NodeConfig.from_counts(W=8, V=4)
        for n in (13, 18, 24):
            g = 28 - n
            t_ours = ours(machine, n, g, "mppc", node).total_time_s
            for lib in (CUDPP, THRUST, MODERNGPU, CUB, LIGHTSCAN):
                t_lib, _ = lib.time_batch(1 << n, 1 << g)
                assert t_lib > t_ours, (n, lib.name)

    def test_lightscan_worst_on_small_batches(self, machine):
        """The paper's largest speedup (549.79x) is against LightScan."""
        t_light, _ = LIGHTSCAN.time_batch(1 << 13, 1 << 15)
        for lib in (CUDPP, THRUST, MODERNGPU, CUB):
            t_lib, _ = lib.time_batch(1 << 13, 1 << 15)
            assert t_light > t_lib

    def test_drop_at_n28(self, machine):
        """'performance drops when n=28, as G=1 and only one PCI-e network
        is used' (MP-PC degenerates to a single network)."""
        node = NodeConfig.from_counts(W=8, V=4)
        tp27 = ours(machine, 27, 1, "mppc", node).throughput_gelems
        tp28 = ours(machine, 28, 0, "mppc", node).throughput_gelems
        assert tp28 < 0.7 * tp27


class TestFigure13And14Shapes:
    def test_m2w4_beats_m8w1_at_small_n(self, cluster):
        """'the best performance is achieved with M=2, W=4 ... whereas
        M=8, W=1 obtains the worst results' (among same-W-per-node splits)."""
        n, g = 13, 15
        node24 = NodeConfig.from_counts(W=4, V=4, M=2)
        node81 = NodeConfig.from_counts(W=1, V=1, M=8)
        t24 = ours(cluster, n, g, "mn-mps", node24).total_time_s
        t81 = ours(cluster, n, g, "mn-mps", node81).total_time_s
        assert t81 > t24

    def test_gap_shrinks_at_large_n(self, cluster):
        """1.48x at 2^13 vs only 1.03x at 2^28."""
        node24 = NodeConfig.from_counts(W=4, V=4, M=2)
        node81 = NodeConfig.from_counts(W=1, V=1, M=8)
        ratio_small = (
            ours(cluster, 13, 15, "mn-mps", node81).total_time_s
            / ours(cluster, 13, 15, "mn-mps", node24).total_time_s
        )
        ratio_large = (
            ours(cluster, 28, 0, "mn-mps", node81).total_time_s
            / ours(cluster, 28, 0, "mn-mps", node24).total_time_s
        )
        assert ratio_small > ratio_large

    def test_mpi_overhead_constant_kernels_scale(self, cluster):
        """Figure 14: gather/scatter shrink with G; stages track data size."""
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        bd = {}
        for n in (13, 28):
            result = ours(cluster, n, 28 - n, "mn-mps", node)
            bd[n] = result.breakdown
        mpi13 = bd[13]["mpi_gather"] + bd[13]["mpi_scatter"]
        mpi28 = bd[28]["mpi_gather"] + bd[28]["mpi_scatter"]
        assert mpi28 <= mpi13  # fewer aux elements at G=1
        # Stage times are within ~2x across the sweep (same total payload).
        assert bd[28]["stage1"] == pytest.approx(bd[13]["stage1"], rel=1.0)

    def test_multinode_beats_libraries(self, cluster):
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        for n in (14, 20, 28):
            g = 28 - n
            t_ours = ours(cluster, n, g, "mn-mps", node).total_time_s
            for lib in (CUDPP, THRUST, MODERNGPU, CUB, LIGHTSCAN):
                t_lib, _ = lib.time_batch(1 << n, 1 << g)
                assert t_lib > t_ours, (n, lib.name)
