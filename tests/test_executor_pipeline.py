"""The unified executor pipeline: run/estimate equivalence, registry,
shared plan resolver, and the problem-parallel activation fix.

The tentpole guarantee of the ``repro.core.executor`` refactor is that the
analytic path is *the same code* as the functional path (one template
method, ``functional=False`` + virtual buffers), so ``estimate(problem)``
must reproduce ``run(data)`` record for record — for every proposal. The
old per-executor estimate copies never had this guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chained import ScanChained
from repro.core.executor import (
    PlanResolver,
    ScanExecutor,
    build_executor,
    get_proposal,
    proposal_names,
    proposal_specs,
)
from repro.core.multi_gpu import ScanMPS, ScanProblemParallel
from repro.core.multi_node import ScanMultiNodeMPS
from repro.core.params import NodeConfig, ProblemConfig
from repro.core.prioritized import ScanMPPC
from repro.core.session import ScanSession
from repro.core.single_gpu import ScanSP
from repro.core.single_pass import ScanSinglePassDLB
from repro.errors import ConfigurationError, ReproError

N = 1 << 13
G = 8


def records_signature(trace):
    return [
        (type(r).__name__, r.phase, r.lane, r.time_s) for r in trace.records
    ]


def executor_cases(machine, cluster):
    """One representative executor per registered proposal."""
    return {
        "sp": ScanSP(machine.gpus[0]),
        "pp": ScanProblemParallel(machine, NodeConfig.from_counts(W=4, V=4)),
        "mps": ScanMPS(machine, NodeConfig.from_counts(W=4, V=4)),
        "mppc": ScanMPPC(machine, NodeConfig.from_counts(W=8, V=4)),
        "mn-mps": ScanMultiNodeMPS(
            cluster, NodeConfig.from_counts(W=4, V=4, M=2)
        ),
        "chained": ScanChained(machine.gpus[0]),
        "sp-dlb": ScanSinglePassDLB(machine.gpus[0]),
    }


class TestRunEstimateEquivalence:
    """For every proposal: estimate == run, to the last trace record."""

    @pytest.mark.parametrize(
        "name", ["sp", "pp", "mps", "mppc", "mn-mps", "chained", "sp-dlb"]
    )
    def test_estimate_matches_run_exactly(self, name, machine, cluster, rng):
        executor = executor_cases(machine, cluster)[name]
        data = rng.integers(-1000, 1000, (G, N)).astype(np.int64)
        problem = ProblemConfig.from_sizes(N=N, G=G, dtype=np.int64)

        run = executor.run(data)
        est = executor.estimate(problem)

        assert est.total_time_s == run.total_time_s
        assert est.breakdown == run.breakdown
        assert records_signature(est.trace) == records_signature(run.trace)
        assert est.plan is run.plan  # one resolver entry serves both
        assert est.output is None
        assert est.config["estimated"] is True
        run_config = dict(run.config)
        est_config = dict(est.config)
        est_config.pop("estimated")
        assert est_config == run_config
        # The functional result actually scanned.
        np.testing.assert_array_equal(
            run.output, np.cumsum(data, axis=1)
        )

    def test_pp_estimate_through_session(self, machine, rng):
        """The satellite: problem parallelism now estimates, via the session."""
        session = ScanSession(machine)
        data = rng.integers(0, 100, (G, N)).astype(np.int64)
        problem = ProblemConfig.from_sizes(N=N, G=G, dtype=np.int64)

        run = session.scan(data, proposal="pp", W=4)
        est = session.estimate(problem, proposal="pp", W=4)

        assert est.total_time_s == run.total_time_s
        assert est.breakdown == run.breakdown
        assert est.proposal == "scan-pp"
        assert est.config["W"] == 4
        # Same cache entry serves both paths: the estimate was a hit.
        assert session.cached_configurations == 1
        assert session.hits == 1

    def test_api_estimate_facade(self, machine):
        from repro.core.api import estimate

        problem = ProblemConfig.from_sizes(N=N, G=G)
        result = estimate(problem, topology=machine, proposal="mps", W=4)
        assert result.proposal == "scan-mps"
        assert result.config["estimated"] is True
        assert result.total_time_s > 0

    def test_session_estimate_validates_like_scan(self, machine):
        session = ScanSession(machine)
        problem = ProblemConfig.from_sizes(N=N, G=G)
        with pytest.raises(ConfigurationError, match="unknown proposal 'tree'; use auto/"):
            session.estimate(problem, proposal="tree")
        with pytest.raises(ConfigurationError, match="K must be an int"):
            session.estimate(problem, K=1.5)


class TestProposalRegistry:
    def test_registry_lists_every_proposal(self):
        assert proposal_names() == (
            "sp", "pp", "mps", "mppc", "mn-mps", "chained", "sp-dlb"
        )

    def test_specs_carry_identity_and_capabilities(self):
        by_name = {s.name: s for s in proposal_specs()}
        assert by_name["sp"].result_label == "scan-sp"
        assert by_name["mppc"].result_label == "scan-mp-pc"
        assert by_name["sp-dlb"].result_label == "scan-sp-dlb"
        assert by_name["sp"].tunable and by_name["mps"].tunable
        assert not by_name["pp"].tunable and not by_name["chained"].tunable
        assert not by_name["sp-dlb"].tunable
        for spec in by_name.values():
            assert spec.summary

    def test_specs_carry_capability_flags(self):
        """The satellite: passes over memory / multi-GPU / estimate are
        queryable per proposal, making sp-dlb's single-pass nature visible."""
        by_name = {s.name: s for s in proposal_specs()}
        assert by_name["sp"].memory_passes == 3.0
        assert by_name["sp-dlb"].memory_passes == 2.0
        assert by_name["chained"].memory_passes == 2.0
        for single_gpu in ("sp", "chained", "sp-dlb"):
            assert not by_name[single_gpu].multi_gpu
        for multi in ("pp", "mps", "mppc", "mn-mps"):
            assert by_name[multi].multi_gpu
        for spec in by_name.values():
            assert spec.supports_estimate

    def test_build_executor_constructs_the_right_class(self, machine, cluster):
        node = NodeConfig.from_counts(W=4, V=4)
        assert isinstance(build_executor("sp", machine, node), ScanSP)
        assert isinstance(build_executor("pp", machine, node), ScanProblemParallel)
        assert isinstance(build_executor("mps", machine, node), ScanMPS)
        assert isinstance(build_executor("chained", machine, node), ScanChained)
        assert isinstance(
            build_executor("sp-dlb", machine, node), ScanSinglePassDLB
        )
        mn = build_executor(
            "mn-mps", cluster, NodeConfig.from_counts(W=4, V=4, M=2), K=2
        )
        assert isinstance(mn, ScanMultiNodeMPS)
        assert mn.K == 2

    def test_unknown_name_raises_the_canonical_error(self, machine):
        with pytest.raises(ConfigurationError, match="unknown proposal 'tree'; use auto/"):
            get_proposal("tree")

    def test_executor_classes_declare_their_registry_name(self, machine, cluster):
        for name, executor in executor_cases(machine, cluster).items():
            assert executor.proposal == name
            assert executor.result_label == get_proposal(name).result_label

    def test_session_serves_registry_proposals(self, machine, rng):
        """The chained extension is schedulable through the session now."""
        session = ScanSession(machine)
        data = rng.integers(0, 100, (4, 1 << 11)).astype(np.int32)
        result = session.scan(data, proposal="chained")
        assert result.proposal == "scan-chained"
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1))
        # Untunable: K="tune" degrades to the proposal's own default.
        tuned = session.scan(data, proposal="chained", K="tune")
        assert tuned.total_time_s == result.total_time_s


class TestPlanResolver:
    def test_executors_share_one_cache(self, machine):
        resolver = PlanResolver()
        problem = ProblemConfig.from_sizes(N=N, G=G)
        a, b = ScanSP(machine.gpus[0]), ScanSP(machine.gpus[1])
        a.resolver = resolver
        b.resolver = resolver
        plan_a = a.plan_for(problem)
        assert (resolver.misses, resolver.hits) == (1, 0)
        plan_b = b.plan_for(problem)
        assert (resolver.misses, resolver.hits) == (1, 1)
        assert plan_b is plan_a
        assert len(resolver) == 1

    def test_distinct_specs_do_not_collide(self, machine):
        """sp and chained share (arch, problem) but pick K differently."""
        resolver = PlanResolver()
        problem = ProblemConfig.from_sizes(N=1 << 24, G=G)
        sp, chained = ScanSP(machine.gpus[0]), ScanChained(machine.gpus[0])
        sp.resolver = resolver
        chained.resolver = resolver
        plan_sp = sp.plan_for(problem)
        plan_chained = chained.plan_for(problem)
        assert resolver.misses == 2
        assert len(resolver) == 2
        assert plan_sp.stage1.params.K > plan_chained.stage1.params.K

    def test_no_private_plan_caches_remain(self, machine, cluster):
        for executor in executor_cases(machine, cluster).values():
            assert not hasattr(executor, "_plan_cache")
            assert executor.resolver is ScanExecutor.resolver

    def test_mppc_plan_for_accepts_explicit_groups_used(self, machine):
        executor = ScanMPPC(machine, NodeConfig.from_counts(W=8, V=4))
        problem = ProblemConfig.from_sizes(N=N, G=G)
        narrow = executor.plan_for(problem, groups_used=1)
        wide = executor.plan_for(problem, groups_used=2)
        assert narrow.stage1.by == G
        assert wide.stage1.by == G // 2


class TestActivationSafety:
    def test_pp_failure_mid_flow_restores_bandwidth_scale(
        self, machine, rng, monkeypatch
    ):
        """The satellite fix: an exception inside the worker loop must not
        leave GPUs activated (dual-die throttled)."""
        executor = ScanProblemParallel(machine, NodeConfig.from_counts(W=4, V=4))
        data = rng.integers(0, 100, (G, N)).astype(np.int64)
        before = {g.id: g.bandwidth_scale for g in machine.gpus}

        calls = {"n": 0}
        original = ScanSP.run_on_device

        def failing(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:  # die mid-loop, after two workers succeeded
                raise ReproError("injected fault")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(ScanSP, "run_on_device", failing)
        with pytest.raises(ReproError, match="injected fault"):
            executor.run(data)
        after = {g.id: g.bandwidth_scale for g in machine.gpus}
        assert after == before

    def test_pp_leaves_no_allocations_behind_on_failure(
        self, machine, rng, monkeypatch
    ):
        executor = ScanProblemParallel(machine, NodeConfig.from_counts(W=4, V=4))
        data = rng.integers(0, 100, (G, N)).astype(np.int64)

        def failing(self, *args, **kwargs):
            raise ReproError("injected fault")

        monkeypatch.setattr(ScanSP, "run_on_device", failing)
        with pytest.raises(ReproError):
            executor.run(data)
        for gpu in machine.gpus:
            assert gpu.pool.used == 0
