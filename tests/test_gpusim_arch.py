"""Tests for the GPU architecture presets."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.arch import (
    KEPLER_K80,
    MAXWELL_GM200,
    PASCAL_P100,
    get_architecture,
)


class TestPresets:
    def test_k80_is_cc37(self):
        assert KEPLER_K80.compute_capability == (3, 7)
        assert KEPLER_K80.max_blocks_per_sm == 16  # "16 in the case of Kepler"
        assert KEPLER_K80.dies_per_board == 2

    def test_maxwell_block_limit(self):
        assert MAXWELL_GM200.max_blocks_per_sm == 32  # "32 in the case of Maxwell"

    def test_lookup_by_name(self):
        assert get_architecture("k80") is KEPLER_K80
        assert get_architecture("MAXWELL") is MAXWELL_GM200
        assert get_architecture("p100") is PASCAL_P100

    def test_lookup_passthrough(self):
        assert get_architecture(KEPLER_K80) is KEPLER_K80

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown GPU architecture"):
            get_architecture("volta9000")

    def test_bandwidth_helpers(self):
        assert KEPLER_K80.peak_bandwidth_bytes == 240e9
        assert KEPLER_K80.achievable_bandwidth_bytes == pytest.approx(0.75 * 240e9)

    def test_warp_thread_consistency(self):
        for arch in (KEPLER_K80, MAXWELL_GM200, PASCAL_P100):
            assert arch.max_warps_per_sm * arch.warp_size == arch.max_threads_per_sm


class TestValidation:
    def test_inconsistent_warp_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            KEPLER_K80.with_overrides(max_threads_per_sm=1000)

    def test_with_overrides_creates_variant(self):
        doubled = KEPLER_K80.with_overrides(sm_count=26)
        assert doubled.sm_count == 26
        assert KEPLER_K80.sm_count == 13  # original untouched
