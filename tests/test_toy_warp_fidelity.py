"""Fidelity tests at the paper's Figure-4 scale: warpSize = 4.

Figure 4 draws the warp scan with warpSize=4, P=4 and Lx=4 "for clarity";
running the full kernel machinery on an architecture with those toy
dimensions makes every intermediate value small enough to check by hand.
"""

import numpy as np

from repro.gpusim.arch import KEPLER_K80
from repro.gpusim.device import GPU
from repro.gpusim.events import Trace
from repro.gpusim.warp import warp_exclusive_scan, warp_inclusive_scan
from repro.core.kernels import (
    launch_chunk_reduce,
    launch_intermediate_scan,
    launch_scan_add,
)
from repro.core.params import KernelParams, ProblemConfig
from repro.core.plan import build_execution_plan

#: A toy architecture with 4-lane warps (the paper's Figure 4 setting).
TOY = KEPLER_K80.with_overrides(
    name="toy (warpSize=4)",
    warp_size=4,
    max_threads_per_sm=512,
    max_warps_per_sm=128,
)


class TestFigure4Values:
    def test_hand_checked_inclusive(self):
        """The staged example: per-thread 4-element scans, then the warp."""
        lanes = np.array([1, 2, 3, 4], dtype=np.int64)
        out, cost = warp_inclusive_scan(lanes, "add", width=4, pattern="lf")
        np.testing.assert_array_equal(out, [1, 3, 6, 10])
        assert cost.steps == 2

    def test_hand_checked_exclusive(self):
        lanes = np.array([1, 2, 3, 4], dtype=np.int64)
        out, _ = warp_exclusive_scan(lanes, "add", width=4, pattern="lf")
        np.testing.assert_array_equal(out, [0, 1, 3, 6])


class TestToyKernelPipeline:
    def make_gpu(self):
        return GPU(0, TOY)

    def run_pipeline(self, gpu, host, kp):
        g, n = host.shape
        problem = ProblemConfig.from_sizes(N=n, G=g, dtype=host.dtype)
        plan = build_execution_plan(TOY, problem, K=kp.K, stage1_template=kp)
        data = gpu.upload(host)
        aux = gpu.alloc((g, plan.chunks_total), host.dtype)
        trace = Trace()
        launch_chunk_reduce(trace, gpu, data, aux, plan)
        launch_intermediate_scan(trace, gpu, aux, plan)
        launch_scan_add(trace, gpu, data, aux, plan)
        out = data.to_host()
        gpu.free(aux)
        gpu.free(data)
        return out

    def test_figure4_geometry(self, rng):
        """Lx=4 threads, P=4 elements/thread, warpSize=4: one warp/block."""
        gpu = self.make_gpu()
        kp = KernelParams(s=0, p=2, l=2, lx=2, ly=0, K=2)
        host = rng.integers(0, 50, (2, 128)).astype(np.int32)
        out = self.run_pipeline(gpu, host, kp)
        np.testing.assert_array_equal(out, np.cumsum(host, axis=1, dtype=np.int32))

    def test_multi_warp_toy_block(self, rng):
        """Lx=16 with warpSize=4: four toy warps exchanging through smem."""
        gpu = self.make_gpu()
        kp = KernelParams(s=2, p=1, l=4, lx=4, ly=0, K=1)
        host = rng.integers(-20, 20, (4, 256)).astype(np.int64)
        out = self.run_pipeline(gpu, host, kp)
        np.testing.assert_array_equal(out, np.cumsum(host, axis=1))

    def test_blockwise_agrees_on_toy_arch(self, rng):
        from repro.gpusim.kernel import ExecutionEngine

        kp = KernelParams(s=1, p=1, l=3, lx=3, ly=0, K=2)
        host = rng.integers(0, 9, (2, 128)).astype(np.int32)
        out_vec = self.run_pipeline(GPU(0, TOY), host, kp)
        blk = GPU(1, TOY, engine=ExecutionEngine("blockwise", np.random.default_rng(2)))
        out_blk = self.run_pipeline(blk, host, kp)
        np.testing.assert_array_equal(out_vec, out_blk)
