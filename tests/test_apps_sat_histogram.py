"""Tests for the summed-area-table and histogram scan applications."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.histogram import batched_cdf, cumulative_histogram, quantiles
from repro.apps.sat import integral_of_region, summed_area_table
from repro.errors import ConfigurationError
from repro.interconnect.topology import tsubame_kfc


class TestSummedAreaTable:
    def test_matches_2d_cumsum(self, machine, rng):
        img = rng.integers(0, 100, (32, 64)).astype(np.int64)
        sat, results = summed_area_table(img, machine)
        expected = img.cumsum(axis=1).cumsum(axis=0)
        np.testing.assert_array_equal(sat, expected)
        assert len(results) == 2  # row pass + column pass

    def test_region_queries(self, machine, rng):
        img = rng.integers(0, 100, (16, 16)).astype(np.int64)
        sat, _ = summed_area_table(img, machine)
        cases = [(0, 0, 15, 15), (0, 0, 0, 0), (3, 4, 9, 12), (15, 15, 15, 15)]
        for y0, x0, y1, x1 in cases:
            expected = img[y0 : y1 + 1, x0 : x1 + 1].sum()
            assert integral_of_region(sat, y0, x0, y1, x1) == expected

    def test_region_bounds_checked(self, machine, rng):
        img = rng.integers(0, 10, (8, 8)).astype(np.int64)
        sat, _ = summed_area_table(img, machine)
        with pytest.raises(ConfigurationError):
            integral_of_region(sat, 0, 0, 8, 8)
        with pytest.raises(ConfigurationError):
            integral_of_region(sat, 5, 0, 3, 3)  # y0 > y1

    def test_non_2d_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            summed_area_table(np.zeros(16, dtype=np.int64), machine)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_random_images(self, seed):
        machine = tsubame_kfc()
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 50, (16, 32)).astype(np.int64)
        sat, _ = summed_area_table(img, machine)
        np.testing.assert_array_equal(sat, img.cumsum(axis=1).cumsum(axis=0))


class TestHistogram:
    def test_cumulative(self, machine, rng):
        counts = rng.integers(0, 100, (4, 64)).astype(np.int64)
        cum, _ = cumulative_histogram(counts, machine)
        np.testing.assert_array_equal(cum, counts.cumsum(axis=1))

    def test_cdf_normalised(self, machine, rng):
        counts = rng.integers(1, 100, (4, 32)).astype(np.int64)
        cdf, _ = batched_cdf(counts, machine)
        np.testing.assert_allclose(cdf[:, -1], 1.0)
        assert (np.diff(cdf, axis=1) >= 0).all()

    def test_cdf_rejects_empty_histograms(self, machine):
        counts = np.zeros((2, 16), dtype=np.int64)
        with pytest.raises(ConfigurationError, match="at least one count"):
            batched_cdf(counts, machine)

    def test_quantiles(self, machine):
        # All mass in bin 5 -> every quantile lands on bin 5.
        counts = np.zeros((1, 16), dtype=np.int64)
        counts[0, 5] = 10
        idx, _ = quantiles(counts, np.array([0.25, 0.5, 1.0]), machine)
        np.testing.assert_array_equal(idx[0], [5, 5, 5])

    def test_median_of_uniform(self, machine):
        counts = np.ones((1, 64), dtype=np.int64)
        idx, _ = quantiles(counts, np.array([0.5]), machine)
        assert 30 <= idx[0, 0] <= 32

    def test_quantile_level_validation(self, machine):
        counts = np.ones((1, 8), dtype=np.int64)
        with pytest.raises(ConfigurationError):
            quantiles(counts, np.array([0.0]), machine)
        with pytest.raises(ConfigurationError):
            quantiles(counts, np.array([1.5]), machine)

    def test_power_of_two_bins_required(self, machine):
        with pytest.raises(ConfigurationError, match="power of two"):
            cumulative_histogram(np.ones((1, 100), dtype=np.int64), machine)
