"""Tests for the benchmark workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.bench.workloads import (
    SweepPoint,
    batch_points,
    make_batch,
    single_problem_points,
)


class TestSweepPoints:
    def test_batch_points_cover_paper_range(self):
        points = batch_points()
        assert points[0].n == 13 and points[-1].n == 28
        for p in points:
            assert p.total_elements == 1 << 28  # G = 2^28 / N

    def test_custom_total(self):
        points = batch_points(total_log2=20, n_min=10)
        assert all(p.total_elements == 1 << 20 for p in points)

    def test_n_max_trim(self):
        points = batch_points(n_max=27)
        assert points[-1].n == 27

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            batch_points(total_log2=20, n_min=25)

    def test_single_problem_points(self):
        points = single_problem_points(13, 16)
        assert [p.n for p in points] == [13, 14, 15, 16]
        assert all(p.G == 1 for p in points)

    def test_str(self):
        assert "N=8192" in str(SweepPoint(n=13, g=15))


class TestMakeBatch:
    def test_shape_and_dtype(self):
        data = make_batch(10, 3)
        assert data.shape == (8, 1024)
        assert data.dtype == np.int32

    def test_deterministic_by_seed(self):
        a = make_batch(8, 1, seed=42)
        b = make_batch(8, 1, seed=42)
        np.testing.assert_array_equal(a, b)
        c = make_batch(8, 1, seed=43)
        assert not np.array_equal(a, c)

    def test_ones_distribution(self):
        data = make_batch(6, 0, distribution="ones")
        assert (data == 1).all()

    def test_zipf_bounded(self):
        data = make_batch(10, 0, distribution="zipf", high=50)
        assert data.max() <= 50

    def test_unknown_distribution(self):
        with pytest.raises(ConfigurationError):
            make_batch(8, 0, distribution="gaussian")
