"""Tests for the persistence layer: codecs, PlanStore, default locations."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SnapshotError
from repro.gpusim.arch import KEPLER_K80, MAXWELL_GM200
from repro.core.executor import PlanResolver, PlanSpec, build_executor
from repro.core.params import KernelParams, NodeConfig, ProblemConfig
from repro.core.store import (
    SCHEMA_VERSION,
    PlanStore,
    SessionSnapshot,
    cache_dir,
    default_autotune_path,
    default_snapshot_path,
    execution_plan_from_dict,
    execution_plan_to_dict,
    export_resolver_plans,
    plan_key,
    plan_spec_from_dict,
    plan_spec_to_dict,
    prime_resolver_plans,
    problem_from_dict,
    problem_to_dict,
)
from repro.interconnect.topology import tsubame_kfc


class TestCodecs:
    @given(
        n=st.integers(min_value=8, max_value=24),
        g=st.integers(min_value=0, max_value=6),
        operator=st.sampled_from(["add", "mul", "max", "min", "or", "xor"]),
        inclusive=st.booleans(),
        dtype=st.sampled_from(["int32", "int64", "float64"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_problem_roundtrip_is_equal(self, n, g, operator, inclusive, dtype):
        """Round-tripped configs must be *equal* (and hash-equal) — that is
        what lets a restored resolver key hit where the original would."""
        problem = ProblemConfig.from_sizes(
            N=1 << n, G=1 << g, dtype=np.dtype(dtype),
            operator=operator, inclusive=inclusive,
        )
        back = problem_from_dict(problem_to_dict(problem))
        assert back == problem
        assert hash(back) == hash(problem)
        # JSON-serialisable all the way down.
        json.dumps(problem_to_dict(problem))

    def test_plan_spec_roundtrip_is_equal(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 14, G=8)
        node = NodeConfig.from_counts(W=4, V=4)
        template = KernelParams(s=5, p=5, l=5, lx=5, ly=0, K=4)
        spec = PlanSpec(problem=problem, parts=4, K=4, template=template,
                        k_space="mps", node=node)
        back = plan_spec_from_dict(plan_spec_to_dict(spec))
        assert back == spec
        assert hash(back) == hash(spec)

    def test_execution_plan_roundtrip(self, machine, fresh_resolver):
        # Use whatever the executors resolve — real plans, not synthetic.
        problem = ProblemConfig.from_sizes(N=1 << 14, G=8)
        build_executor(
            "mps", machine, NodeConfig.from_counts(W=4, V=4)
        ).estimate(problem)
        build_executor(
            "sp", machine, NodeConfig.from_counts(W=1, V=1)
        ).estimate(problem)
        exported = fresh_resolver.export()
        assert exported
        for _, _, plan in exported:
            back = execution_plan_from_dict(execution_plan_to_dict(plan))
            assert back == plan

    def test_tampered_plan_fails_validation(self, machine, fresh_resolver):
        build_executor(
            "sp", machine, NodeConfig.from_counts(W=1, V=1)
        ).estimate(ProblemConfig.from_sizes(N=1 << 14, G=8))
        _, _, plan = fresh_resolver.export()[0]
        d = execution_plan_to_dict(plan)
        d["stage2"]["params"]["K"] = 2  # violates Premise 3 (K^2 == 1)
        with pytest.raises(Exception):
            execution_plan_from_dict(d)


class TestPlanKey:
    def test_fingerprint_is_embedded(self):
        spec_dict = {"x": 1}
        a = plan_key("K80", spec_dict, "fp-one")
        b = plan_key("K80", spec_dict, "fp-two")
        assert a != b
        assert a.endswith("|fp-one") and b.endswith("|fp-two")

    def test_distinguishes_arch_and_spec(self):
        assert plan_key("K80", {"x": 1}, "f") != plan_key("M200", {"x": 1}, "f")
        assert plan_key("K80", {"x": 1}, "f") != plan_key("K80", {"x": 2}, "f")


class TestPlanStore:
    def test_in_memory_store(self):
        store = PlanStore()
        store.section("autotune")["k"] = {"best_k": 4}
        store.save()  # no-op, no path
        assert store.path is None
        assert len(store) == 1

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "store.json"
        store = PlanStore(path)
        store.section("autotune")["k"] = {"best_k": 4}
        store.section("plans")["p"] = {"spec": {}, "plan": {}}
        store.save()

        again = PlanStore(path)
        assert again.section("autotune") == {"k": {"best_k": 4}}
        assert again.section("plans") == {"p": {"spec": {}, "plan": {}}}
        assert len(again) == 2

    def test_sections_are_isolated(self, tmp_path):
        path = tmp_path / "store.json"
        store = PlanStore(path)
        store.section("autotune")["shared-key"] = {"best_k": 1}
        store.section("plans")["shared-key"] = {"spec": 2}
        assert store.section("autotune")["shared-key"] != \
            store.section("plans")["shared-key"]

    def test_atomic_save_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "store.json"
        store = PlanStore(path)
        store.section("autotune")["k"] = {"best_k": 4}
        store.save()
        store.save()
        assert not list(tmp_path.glob("*.tmp.*"))
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION

    @pytest.mark.parametrize("content,reason_word", [
        ("{truncated", "unreadable"),
        ("[1, 2, 3]", "not a JSON object"),
        (json.dumps({"schema": SCHEMA_VERSION + 1, "sections": {}}), "schema"),
        (json.dumps({"schema": SCHEMA_VERSION, "sections": "oops"}), "sections"),
        (json.dumps({"what": "even"}), "legacy"),
    ])
    def test_corruption_quarantined(self, tmp_path, content, reason_word):
        path = tmp_path / "store.json"
        path.write_text(content)
        store = PlanStore(path)
        assert len(store) == 0
        assert reason_word in store.quarantined_reason
        quarantined = tmp_path / "store.json.corrupt"
        assert quarantined.read_text() == content
        assert not path.exists()

    def test_legacy_flat_autotune_migrates(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({
            "K80|int32|add|sp|n14g3|W1V1M1": {
                "best_k": 4, "best_time_s": 1e-4, "candidates": 3,
            }
        }))
        store = PlanStore(path)
        assert store.quarantined_reason == ""
        assert len(store.section("autotune")) == 1
        store.save()
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION


class TestResolverBridge:
    def test_export_prime_roundtrip(self, machine):
        resolver = PlanResolver()
        from repro.core.executor import ScanExecutor

        original = ScanExecutor.resolver
        try:
            ScanExecutor.resolver = resolver
            build_executor("mps", machine, NodeConfig.from_counts(W=4, V=4))
            build_executor("sp", machine, NodeConfig.from_counts(W=1, V=1))
            records = export_resolver_plans(resolver, machine.arch, "fp")
            assert len(records) == len(resolver)

            fresh = PlanResolver()
            primed = prime_resolver_plans(fresh, machine.arch, records, "fp")
            assert primed == len(records)
            assert fresh.hits == 0 and fresh.misses == 0
            # Priming again is idempotent (live entries win).
            assert prime_resolver_plans(fresh, machine.arch, records, "fp") == 0
        finally:
            ScanExecutor.resolver = original

    def test_mismatched_fingerprint_not_primed(self, machine):
        from repro.core.executor import ScanExecutor

        original = ScanExecutor.resolver
        try:
            resolver = PlanResolver()
            ScanExecutor.resolver = resolver
            build_executor("sp", machine, NodeConfig.from_counts(W=1, V=1))
            records = export_resolver_plans(resolver, machine.arch, "old-fp")
            fresh = PlanResolver()
            assert prime_resolver_plans(
                fresh, machine.arch, records, "new-fp"
            ) == 0
            assert len(fresh) == 0
        finally:
            ScanExecutor.resolver = original

    def test_malformed_record_skipped(self, machine):
        fresh = PlanResolver()
        records = {"K80|deadbeef|fp": {"spec": {"broken": True}, "plan": {}}}
        assert prime_resolver_plans(fresh, machine.arch, records, "fp") == 0


class TestCacheDirEnv:
    def test_env_var_moves_everything(self, tmp_path, monkeypatch):
        """The single REPRO_CACHE_DIR satellite: one variable relocates the
        autotune cache, the plan store default and the snapshot default."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cache_dir() == tmp_path / "cache"
        assert default_autotune_path() == tmp_path / "cache" / "autotune.json"
        assert default_snapshot_path() == tmp_path / "cache" / "snapshot.json"

    def test_unset_falls_back_to_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(cache_dir()).endswith(os.path.join(".cache", "repro"))

    def test_session_uses_env_cache(self, tmp_path, monkeypatch, machine):
        from repro.core.session import ScanSession

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = ScanSession(machine)
        assert session.tuner.cache.path == tmp_path / "autotune.json"
        # A tune actually persists there.
        rng = np.random.default_rng(0)
        data = rng.integers(0, 100, (8, 1 << 12)).astype(np.int32)
        session.scan(data, proposal="sp", K="tune")
        assert (tmp_path / "autotune.json").exists()

    def test_session_stays_in_memory_without_env(self, monkeypatch, machine):
        from repro.core.session import ScanSession

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        session = ScanSession(machine)
        assert session.tuner.cache.path is None

    def test_service_uses_env_cache(self, tmp_path, monkeypatch, machine):
        from repro.serve.service import ScanService

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        service = ScanService(topology=machine)
        assert service.session.tuner.cache.path == tmp_path / "autotune.json"


class TestSnapshotFileFormat:
    def test_snapshot_roundtrip(self, tmp_path):
        snap = SessionSnapshot(arch="K80", fingerprint="fp",
                               autotune={"k": {"best_k": 2}})
        path = snap.save(tmp_path / "snap.json")
        back = SessionSnapshot.load(path)
        assert back.arch == "K80" and back.fingerprint == "fp"
        assert back.autotune == {"k": {"best_k": 2}}
        assert back.schema == SCHEMA_VERSION

    def test_unreadable_snapshot_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("###")
        with pytest.raises(SnapshotError, match="unreadable"):
            SessionSnapshot.load(path)

    def test_wrong_schema_loads_but_refuses_restore(self, tmp_path):
        snap = SessionSnapshot(arch="K80", fingerprint="fp", schema=999)
        path = snap.save(tmp_path / "snap.json")
        back = SessionSnapshot.load(path)
        ok, reason = back.compatible_with("K80", "fp")
        assert not ok and "schema" in reason

    def test_compatibility_gates(self):
        snap = SessionSnapshot(arch="K80", fingerprint="fp")
        assert snap.compatible_with("K80", "fp") == (True, "")
        ok, reason = snap.compatible_with("M200", "fp")
        assert not ok and "arch" in reason
        ok, reason = snap.compatible_with("K80", "other")
        assert not ok and "fingerprint" in reason

    def test_default_snapshot_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        snap = SessionSnapshot(arch="K80", fingerprint="fp")
        target = snap.save()
        assert target == tmp_path / "snapshot.json"
        assert target.exists()
