"""Flight recorder: bounded telemetry ring + postmortem bundles.

Integration-level acceptance: a terminal serving error — failover
exhaustion in the session, backpressure at service admission — leaves a
``postmortem-NNN/`` bundle behind when the recorder is armed, and the
original exception propagates unchanged whether or not a bundle was
written (disarmed, or past the dump cap).
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.session import ScanSession
from repro.errors import BackpressureError, FailoverExhaustedError
from repro.gpusim.faults import DeviceDown, FaultSchedule
from repro.interconnect.topology import tsubame_kfc
from repro.obs import flight
from repro.obs.flight import FlightRecorder
from repro.obs.slo import SLOMonitor, availability_objective


@pytest.fixture(autouse=True)
def isolated_recorder():
    """Start every test disarmed (even under REPRO_FLIGHT_DIR) and leave
    the singleton disarmed-and-empty afterwards."""
    flight.disarm()
    yield
    flight.disarm()


@pytest.fixture
def armed(tmp_path):
    """Arm the module singleton at tmp_path; fully disarm afterwards."""
    flight.arm(str(tmp_path))
    try:
        yield tmp_path
    finally:
        flight.disarm()


class TestRecorderUnit:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=4)
        rec.arm("unused")
        for i in range(10):
            rec.note("event", i=i)
        assert len(rec.notes) == 4
        assert [n["i"] for n in rec.notes] == [6, 7, 8, 9]
        assert rec.notes[-1]["seq"] == 10      # seq keeps counting

    def test_dump_disarmed_returns_none(self, tmp_path):
        rec = FlightRecorder()
        assert rec.dump(RuntimeError("x")) is None

    def test_dump_writes_bundle(self, tmp_path):
        rec = FlightRecorder()
        rec.arm(str(tmp_path))
        rec.note("something", detail=1)
        bundle = rec.dump(RuntimeError("boom"), health={"ok": False})
        assert bundle == str(tmp_path / "postmortem-000")
        payload = json.loads((tmp_path / "postmortem-000" / "flight.json")
                             .read_text())
        assert payload["error"] == {"type": "RuntimeError", "message": "boom"}
        assert payload["notes"][0]["event"] == "something"
        assert json.loads((tmp_path / "postmortem-000" / "health.json")
                          .read_text()) == {"ok": False}
        assert not (tmp_path / "postmortem-000" / "trace.json").exists()

    def test_dump_cap_bounds_disk_writes(self, tmp_path):
        rec = FlightRecorder(max_dumps=2)
        rec.arm(str(tmp_path))
        assert rec.dump("one") is not None
        assert rec.dump("two") is not None
        assert rec.dump("three") is None
        assert sorted(os.listdir(tmp_path)) == ["postmortem-000",
                                                "postmortem-001"]

    def test_disarm_clears_everything(self, tmp_path):
        rec = FlightRecorder()
        rec.arm(str(tmp_path))
        rec.note("x")
        rec.dump("x")
        rec.disarm()
        assert not rec.armed
        assert len(rec.notes) == 0 and rec.dumps == []

    def test_module_note_is_a_noop_while_disarmed(self):
        assert not flight.is_armed()
        flight.note("dropped", x=1)
        assert len(flight.flight_recorder().notes) == 0

    def test_env_variable_arms_at_import(self, tmp_path):
        env = dict(os.environ, REPRO_FLIGHT_DIR=str(tmp_path),
                   PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import flight; print(flight.is_armed())"],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == "True"


def batch(rng, g=8, n=1 << 11):
    return rng.integers(-40, 90, (g, n)).astype(np.int64)


class TestSessionIntegration:
    def test_failover_exhaustion_dumps_bundle(self, armed, rng):
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        machine.install_faults(FaultSchedule(
            [DeviceDown(at_call=1, gpu_id=g) for g in range(8)]
        ))
        with pytest.raises(FailoverExhaustedError):
            session.scan(batch(rng), proposal="mps", W=4, V=4)
        bundle = armed / "postmortem-000"
        payload = json.loads((bundle / "flight.json").read_text())
        assert payload["error"]["type"] == "FailoverExhaustedError"
        assert payload["notes"][-1]["event"] == "failover_exhausted"
        health = json.loads((bundle / "health.json").read_text())
        assert health["healthy_gpus"] < health["total_gpus"]
        assert (bundle / "registry.json").exists()

    def test_disarmed_failure_leaves_no_artifacts(self, tmp_path, rng):
        assert not flight.is_armed()
        machine = tsubame_kfc(1)
        session = ScanSession(machine)
        machine.install_faults(FaultSchedule(
            [DeviceDown(at_call=1, gpu_id=g) for g in range(8)]
        ))
        with pytest.raises(FailoverExhaustedError):
            session.scan(batch(rng), proposal="mps", W=4, V=4)
        assert list(tmp_path.iterdir()) == []


class TestServiceIntegration:
    def test_backpressure_dumps_with_slo_and_last_trace(self, armed, rng):
        mon = SLOMonitor([availability_objective("avail", target=0.9)])
        service = ScanSession(tsubame_kfc(1)).service(
            max_batch=8, max_queue=2, slo=mon,
        )
        data = rng.integers(0, 9, 1 << 9).astype(np.int64)
        service.submit(data)
        service.submit(data)
        service.drain()             # one real batch on the books
        service.submit(data)
        service.submit(data)        # queue back at the admission bound
        with pytest.raises(BackpressureError):
            service.submit(data)
        bundle = armed / "postmortem-000"
        payload = json.loads((bundle / "flight.json").read_text())
        assert payload["error"]["type"] == "BackpressureError"
        assert payload["notes"][-1]["event"] == "backpressure"
        assert payload["slo"]["observed"] == 3   # 2 served ok + the rejection
        # A batch completed before the rejection, so its trace rides along.
        trace = json.loads((bundle / "trace.json").read_text())
        assert trace["traceEvents"]

    def test_postmortem_bundle_carries_the_decision_log(self, armed, rng):
        """Every applied control decision is noted while armed, so a
        postmortem bundle shows what the controllers did leading up to
        the failure — here a burst that scales ``max_batch`` past the
        admission bound until backpressure trips the dump."""
        from repro.control import ServiceControllerConfig, adaptive_controller

        controller = adaptive_controller(ServiceControllerConfig(
            high_rate=1e5, low_rate=1e4, batch_ceiling=16,
            wait_ceiling_s=1e-4, cooldown_s=1e-7, window=4, min_samples=2,
        ))
        service = ScanSession(tsubame_kfc(1)).service(
            max_batch=2, max_wait_s=1e-4, max_queue=6, controller=controller,
        )
        data = rng.integers(0, 9, 1 << 9).astype(np.int64)
        with pytest.raises(BackpressureError):
            for i in range(32):
                service.submit(data, at=i * 1e-7)
        assert controller.decisions          # the burst moved the knobs
        bundle = armed / "postmortem-000"
        payload = json.loads((bundle / "flight.json").read_text())
        assert payload["error"]["type"] == "BackpressureError"
        assert payload["notes"][-1]["event"] == "backpressure"
        control_notes = [n for n in payload["notes"]
                         if n["event"] == "control"]
        assert [(n["controller"], n["action"], n["before"], n["after"])
                for n in control_notes] == \
            [(d["controller"], d["action"], d["before"], d["after"])
             for d in controller.decision_log()]

    def test_exception_identical_with_and_without_recorder(self, tmp_path,
                                                           rng):
        def reject(arm_dir):
            if arm_dir is not None:
                flight.arm(str(arm_dir))
            try:
                service = ScanSession(tsubame_kfc(1)).service(max_batch=8,
                                                              max_queue=1)
                data = rng.integers(0, 9, 1 << 9).astype(np.int64)
                service.submit(data)
                with pytest.raises(BackpressureError) as excinfo:
                    service.submit(data)
                return str(excinfo.value)
            finally:
                flight.disarm()

        assert reject(None) == reject(tmp_path / "armed")
