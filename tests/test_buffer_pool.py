"""Buffer pool: recycling semantics, poison mode, and scan equivalence.

The pool may only change *where* bytes live, never what any scan
computes or what the cost model reports. The equivalence tests drive
full scans through recycled, sentinel-poisoned buffers in both execution
modes and demand bit-identical outputs and identical simulated time.
"""

import numpy as np
import pytest

from repro.core.api import scan
from repro.gpusim.arch import KEPLER_K80
from repro.gpusim.device import GPU
from repro.gpusim.kernel import ExecutionEngine
from repro.gpusim.memory import POISON_BYTE, BufferPool
from repro.gpusim.metrics import buffer_pool_stats
from repro.interconnect.topology import tsubame_kfc
from repro.util.hotpath import fast_paths

#: (proposal, placement) points small enough for blockwise execution.
SERVING_POINTS = [
    ("sp", dict(W=1, V=1, M=1)),
    ("mps", dict(W=4, V=4, M=1)),
    ("mppc", dict(W=8, V=4, M=1)),
]


def _batch(g=4, n=4096, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(-(2**20), 2**20, size=(g, n)).astype(np.int64)


class TestBufferPoolUnit:
    def test_miss_then_hit_same_class(self):
        pool = BufferPool()
        arr, block = pool.take((8, 16), np.int64)
        assert arr.shape == (8, 16) and arr.dtype == np.int64
        pool.put(block, np.int64)
        arr2, block2 = pool.take((16, 8), np.int64)  # same nbytes class
        assert block2 is block
        assert pool.stats()["hits"] == 1 and pool.stats()["misses"] == 1

    def test_size_classes_are_powers_of_two(self):
        pool = BufferPool()
        _, block = pool.take(300, np.uint8)
        assert block.nbytes == 512
        _, tiny = pool.take(1, np.uint8)
        assert tiny.nbytes == 256  # floor class

    def test_dtype_keys_do_not_mix(self):
        pool = BufferPool()
        _, block = pool.take(128, np.int64)
        pool.put(block, np.int64)
        _, other = pool.take(256, np.float32)  # same class, other dtype
        assert other is not block
        assert pool.misses == 2

    def test_poison_fills_recycled_blocks_only(self):
        pool = BufferPool(poison=True)
        arr, block = pool.take(64, np.uint8)
        arr[...] = 7
        pool.put(block, np.uint8)
        recycled, _ = pool.take(64, np.uint8)
        assert (recycled == POISON_BYTE).all()

    def test_trim_drops_parked_blocks(self):
        pool = BufferPool()
        _, block = pool.take(1024, np.uint8)
        pool.put(block, np.uint8)
        assert pool.pooled_buffers == 1
        assert pool.trim() == block.nbytes
        assert pool.pooled_buffers == 0 and pool.pooled_bytes == 0

    def test_counters_reconcile(self):
        pool = BufferPool()
        blocks = []
        for n in (100, 200, 100, 400):
            _, b = pool.take(n, np.uint8)
            blocks.append(b)
        for b in blocks:
            pool.put(b, np.uint8)
        _, _ = pool.take(100, np.uint8)
        stats = pool.stats()
        assert stats["hits"] + stats["misses"] == stats["allocs"] == 5
        assert stats["releases"] == 4


class TestPoolThroughDevice:
    def test_free_returns_block_and_releases_accounting(self):
        gpu = GPU(0, KEPLER_K80, buffer_pool=BufferPool())
        buf = gpu.upload(np.arange(32, dtype=np.int64))
        assert gpu.pool.used == 256
        gpu.free(buf)
        assert gpu.pool.used == 0
        assert gpu.buffer_pool.pooled_buffers == 1
        buf2 = gpu.upload(np.arange(32, dtype=np.int64))
        assert gpu.buffer_pool.hits == 1
        np.testing.assert_array_equal(buf2.to_host(), np.arange(32))

    def test_topology_toggle(self):
        topo = tsubame_kfc(1)
        assert not buffer_pool_stats(topo)["enabled"]
        topo.enable_buffer_pooling(poison=True)
        assert all(g.buffer_pool.poison for g in topo.gpus)
        topo.disable_buffer_pooling()
        assert not buffer_pool_stats(topo)["enabled"]


class TestPooledScanEquivalence:
    """Pool + poison on, both engine modes, versus an unpooled reference."""

    @pytest.mark.parametrize("proposal,spec", SERVING_POINTS)
    def test_modes_identical_with_poisoned_pool(self, proposal, spec):
        data = _batch()
        reference = scan(data, topology=tsubame_kfc(1), proposal=proposal, **spec)

        for mode in ("vectorized", "blockwise"):
            topo = tsubame_kfc(
                1, engine=ExecutionEngine(mode=mode, rng=np.random.default_rng(5))
            )
            topo.enable_buffer_pooling(poison=True)
            first = scan(data, topology=topo, proposal=proposal, **spec)
            # Second serve runs on recycled, sentinel-filled buffers.
            second = scan(data, topology=topo, proposal=proposal, **spec)

            for result in (first, second):
                assert np.array_equal(result.output, reference.output), (
                    f"{proposal}/{mode}: pooled output differs"
                )
                assert result.trace.total_time() == reference.trace.total_time()

            stats = buffer_pool_stats(topo)
            assert stats["enabled"]
            assert stats["hits"] + stats["misses"] == stats["allocs"]
            assert stats["hits"] > 0, f"{proposal}/{mode}: second call never reused"

    @pytest.mark.parametrize("proposal,spec", SERVING_POINTS)
    def test_fast_paths_bit_identical(self, proposal, spec):
        data = _batch(seed=23)
        with fast_paths(False):
            slow = scan(data, topology=tsubame_kfc(1), proposal=proposal, **spec)
        fast = scan(data, topology=tsubame_kfc(1), proposal=proposal, **spec)
        assert np.array_equal(slow.output, fast.output)
        assert slow.trace.total_time() == fast.trace.total_time()
