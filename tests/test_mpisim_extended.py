"""Tests for the extended MPI surface (send/recv, reduce, allreduce, alltoall)."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.gpusim.events import Trace
from repro.mpisim.communicator import Communicator


@pytest.fixture
def comm(cluster):
    gpus = cluster.select_gpus(4, 4, 2)
    return Communicator(cluster, [g for group in gpus for g in group])


class TestSendRecv:
    def test_functional(self, comm, rng):
        payload = rng.integers(0, 100, 64).astype(np.int32)
        send = comm.gpus[2].upload(payload)
        recv = comm.gpus[6].alloc((64,), np.int32, fill=0)
        trace = Trace()
        comm.send_recv(trace, "p2p", send, recv, src=2, dst=6)
        np.testing.assert_array_equal(recv.to_host(), payload)
        assert len(trace.mpi_records()) == 1

    def test_internode_rides_ib(self, comm):
        send = comm.gpus[0].alloc((32,), np.int32, fill=1)
        recv = comm.gpus[4].alloc((32,), np.int32, fill=0)
        trace = Trace()
        comm.send_recv(trace, "p2p", send, recv, src=0, dst=4)
        assert trace.mpi_records()[0].lane == "ib"

    def test_intranode_rides_pcie(self, comm):
        send = comm.gpus[0].alloc((32,), np.int32, fill=1)
        recv = comm.gpus[1].alloc((32,), np.int32, fill=0)
        trace = Trace()
        comm.send_recv(trace, "p2p", send, recv, src=0, dst=1)
        assert trace.mpi_records()[0].lane.startswith("pcie")

    def test_bad_ranks(self, comm):
        buf = comm.gpus[0].alloc((4,), np.int32, fill=0)
        with pytest.raises(MPIError):
            comm.send_recv(Trace(), "p", buf, buf, src=0, dst=99)

    def test_shape_mismatch(self, comm):
        send = comm.gpus[0].alloc((4,), np.int32, fill=0)
        recv = comm.gpus[1].alloc((8,), np.int32, fill=0)
        with pytest.raises(MPIError, match="mismatch"):
            comm.send_recv(Trace(), "p", send, recv, src=0, dst=1)


class TestReduce:
    def test_sum(self, comm):
        sends = [g.upload(np.full(16, rank, dtype=np.int64))
                 for rank, g in enumerate(comm.gpus)]
        recv = comm.gpus[0].alloc((16,), np.int64, fill=-1)
        comm.reduce(Trace(), "r", sends, recv)
        np.testing.assert_array_equal(recv.to_host(), np.full(16, sum(range(8))))

    def test_max(self, comm, rng):
        rows = [rng.integers(-100, 100, 32).astype(np.int32) for _ in comm.gpus]
        sends = [g.upload(row) for g, row in zip(comm.gpus, rows)]
        recv = comm.gpus[0].alloc((32,), np.int32)
        comm.reduce(Trace(), "r", sends, recv, op="max")
        np.testing.assert_array_equal(recv.to_host(), np.max(rows, axis=0))

    def test_priced_like_gather(self, comm):
        sends = [g.alloc((1024,), np.int32, fill=0) for g in comm.gpus]
        recv = comm.gpus[0].alloc((1024,), np.int32)
        t_reduce, t_gather = Trace(), Trace()
        comm.reduce(t_reduce, "r", sends, recv)
        big_recv = comm.gpus[0].alloc((8 * 1024,), np.int32)
        comm.gather(t_gather, "g", sends, big_recv)
        assert t_reduce.total_time() == pytest.approx(t_gather.total_time())

    def test_shape_validation(self, comm):
        sends = [g.alloc((8,), np.int32, fill=0) for g in comm.gpus]
        recv = comm.gpus[0].alloc((4,), np.int32)
        with pytest.raises(MPIError):
            comm.reduce(Trace(), "r", sends, recv)


class TestAllreduce:
    def test_every_rank_gets_total(self, comm):
        sends = [g.upload(np.full(8, rank + 1, dtype=np.int64))
                 for rank, g in enumerate(comm.gpus)]
        recvs = [g.alloc((8,), np.int64, fill=0) for g in comm.gpus]
        comm.allreduce(Trace(), "ar", sends, recvs)
        for buf in recvs:
            np.testing.assert_array_equal(buf.to_host(), np.full(8, 36))


class TestAlltoall:
    def test_transpose_semantics(self, comm):
        size = comm.size
        sends = [
            g.upload(np.full((size, 4), rank * 10 + np.arange(size)[:, None],
                             dtype=np.int32))
            for rank, g in enumerate(comm.gpus)
        ]
        recvs = [g.alloc((size, 4), np.int32, fill=-1) for g in comm.gpus]
        comm.alltoall(Trace(), "a2a", sends, recvs)
        for j, buf in enumerate(recvs):
            out = buf.to_host()
            for i in range(size):
                assert (out[i] == i * 10 + j).all()

    def test_mixed_lanes(self, comm):
        sends = [g.alloc((comm.size, 16), np.int32, fill=0) for g in comm.gpus]
        recvs = [g.alloc((comm.size, 16), np.int32, fill=0) for g in comm.gpus]
        trace = Trace()
        comm.alltoall(trace, "a2a", sends, recvs)
        lanes = {r.lane for r in trace.mpi_records()}
        assert "ib" in lanes
        assert any(lane.startswith("pcie") for lane in lanes)

    def test_leading_dim_validation(self, comm):
        sends = [g.alloc((2, 4), np.int32, fill=0) for g in comm.gpus]
        recvs = [g.alloc((2, 4), np.int32, fill=0) for g in comm.gpus]
        with pytest.raises(MPIError, match="comm size"):
            comm.alltoall(Trace(), "a2a", sends, recvs)
