"""Golden-trace snapshot: a coalesced service batch must be
indistinguishable — record for record — from the equivalent hand-built
batched scan.

The service's only job is admission + shaping; once a batch is formed it
must dispatch through exactly the same executor path as a direct
``ScanSession.scan`` on the same ``(G, N)`` problem. Trace records are
frozen dataclasses, so ``==`` compares every field (kernel names, grid
shapes, byte counts, lanes, simulated times). Any divergence means the
service is silently planning or timing differently from the library it
fronts — the bug class this snapshot pins down.
"""

import numpy as np
import pytest

from repro.core.executor import pad_rows_to_batch
from repro.core.session import ScanSession
from repro.interconnect.topology import tsubame_kfc


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def draws(rng, count, n, dtype=np.int32):
    return [rng.integers(-40, 90, n).astype(dtype) for _ in range(count)]


def hand_built(rows, n, operator, proposal, **kwargs):
    """The reference: pad the same rows by hand, scan on a fresh session."""
    batch = pad_rows_to_batch(rows, n, operator, dtype=rows[0].dtype)
    session = ScanSession(tsubame_kfc(kwargs.pop("nodes", 1)))
    return session.scan(batch, proposal=proposal, operator=operator, **kwargs)


@pytest.mark.parametrize(
    "proposal,kwargs",
    [("sp", {}), ("pp", {"W": 4}), ("mps", {"W": 4, "V": 4})],
)
def test_coalesced_batch_trace_matches_hand_built(rng, proposal, kwargs):
    rows = draws(rng, 5, 1 << 10)
    service = ScanSession(tsubame_kfc(1)).service(
        max_batch=8, proposal=proposal, **kwargs
    )
    tickets = [service.submit(r) for r in rows]
    service.drain()
    assert len(service.batches) == 1
    golden = service.batches[0].result
    assert golden is not None

    reference = hand_built(rows, 1 << 10, "add", proposal, **kwargs)

    # Record-for-record equality: same kernels, same transfers, same
    # simulated times, in the same order.
    assert golden.trace.records == reference.trace.records
    assert golden.trace.breakdown() == reference.trace.breakdown()
    assert golden.total_time_s == reference.total_time_s
    assert golden.proposal == reference.proposal
    assert golden.problem.G == reference.problem.G  # 5 rows padded to 8

    # And the scattered per-request outputs are exactly the reference rows.
    for i, (t, row) in enumerate(zip(tickets, rows)):
        np.testing.assert_array_equal(t.output, reference.output[i, : row.size])


def test_ragged_mix_trace_matches_hand_built(rng):
    """A 1000-element and a 1024-element request coalesce under the same
    padded key; the trace must match a hand-padded 2-row batch."""
    short = rng.integers(-40, 90, 1000).astype(np.int64)
    full = rng.integers(-40, 90, 1024).astype(np.int64)
    service = ScanSession(tsubame_kfc(1)).service(max_batch=4, proposal="sp")
    t_short = service.submit(short, operator="max")
    t_full = service.submit(full, operator="max")
    service.drain()
    assert len(service.batches) == 1
    golden = service.batches[0].result

    reference = hand_built([short, full], 1 << 10, "max", "sp")
    assert golden.trace.records == reference.trace.records
    assert golden.total_time_s == reference.total_time_s
    np.testing.assert_array_equal(t_short.output, reference.output[0, :1000])
    np.testing.assert_array_equal(t_full.output, reference.output[1])


def test_exec_shares_partition_the_golden_trace_time(rng):
    """Scattered latency accounting re-partitions exactly the golden
    batch time — nothing invented, nothing lost (satellite 4's invariant
    at the trace level)."""
    rows = draws(rng, 6, 1 << 11)
    service = ScanSession(tsubame_kfc(1)).service(max_batch=8, proposal="pp", W=4)
    tickets = [service.submit(r) for r in rows]
    service.drain()
    golden = service.batches[0].result
    assert sum(t.exec_share_s for t in tickets) == golden.total_time_s
    assert all(t.batch_time_s == golden.total_time_s for t in tickets)
