"""Tests for Premises 1-4 and the K search spaces (Eq. 1-3)."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.gpusim.arch import KEPLER_K80, MAXWELL_GM200
from repro.core.params import NodeConfig, ProblemConfig
from repro.core.premises import (
    derive_stage_kernel_params,
    k_search_space,
    premise1_block_configuration,
    premise2_p,
    premise3_k_max,
    premise4_k_max_prioritized,
    premise4_k_max_scattering,
)


class TestPremise1:
    def test_kepler_bold_row(self):
        """cc 3.7: 4 warps (128 threads, l=7), <=64 regs, <=7168 B smem."""
        result = premise1_block_configuration(KEPLER_K80)
        assert result.warps_per_block == 4
        assert result.l == 7
        assert result.reg_budget_per_thread == 64
        assert result.smem_budget_per_block == 7168
        assert result.blocks_per_sm == 16
        assert result.warp_occupancy == 1.0

    def test_maxwell_prefers_smaller_blocks(self):
        """32 resident blocks on Maxwell let 2-warp blocks reach both maxima."""
        result = premise1_block_configuration(MAXWELL_GM200)
        assert result.warps_per_block == 2
        assert result.blocks_per_sm == 32
        assert result.warp_occupancy == 1.0


class TestPremise2:
    def test_paper_p3_for_int32(self):
        """64-register budget, int32 -> p = 3 (P = 8), the paper's value."""
        assert premise2_p(64, np.int32) == 3

    def test_wider_dtype_reduces_p(self):
        assert premise2_p(64, np.int64) < premise2_p(64, np.int32)

    def test_larger_budget_raises_p(self):
        assert premise2_p(128, np.int32) > premise2_p(64, np.int32)

    def test_too_small_budget(self):
        with pytest.raises(TuningError):
            premise2_p(24, np.int32)


class TestDerivedParams:
    def test_kepler_tuple(self):
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        assert kp.l == 7 and kp.lx == 7 and kp.ly == 0
        assert kp.p == 3
        assert kp.S == 4  # one smem slot per warp, 4 warps
        assert kp.s <= 5  # shuffle bound

    def test_smem_within_premise1_budget(self):
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        assert kp.smem_bytes(4) <= 7168

    def test_overrides(self):
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32, lx_override=5, p_override=1)
        assert kp.lx == 5 and kp.p == 1


class TestEquation1:
    def test_formula(self):
        """K^1 <= G*N / (16 * P1 * P2 * L1 * L2)."""
        problem = ProblemConfig.from_sizes(N=1 << 20, G=64)
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        bound = premise3_k_max(problem, kp, kp, KEPLER_K80)
        expected = (64 * (1 << 20)) // (16 * 8 * 8 * 128 * 128)
        assert bound == expected

    def test_floor_at_one(self):
        problem = ProblemConfig.from_sizes(N=1024, G=1)
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        assert premise3_k_max(problem, kp, kp, KEPLER_K80) == 1


class TestEquations2And3:
    def test_eq2_scattering(self):
        """N / (K * Lx * P) >= M*W."""
        problem = ProblemConfig.from_sizes(N=1 << 20)
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        bound = premise4_k_max_scattering(problem, kp, node)
        assert bound == (1 << 20) // (128 * 8 * 8)
        # Every admissible K leaves at least one chunk per GPU.
        assert (1 << 20) // (bound * 128 * 8) >= 8

    def test_eq3_prioritized(self):
        problem = ProblemConfig.from_sizes(N=1 << 20)
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        node = NodeConfig.from_counts(W=8, V=4)
        bound = premise4_k_max_prioritized(problem, kp, node)
        assert bound == (1 << 20) // (128 * 8 * 4)

    def test_eq3_looser_than_eq2(self):
        """V <= M*W, so the prioritized bound is never tighter."""
        problem = ProblemConfig.from_sizes(N=1 << 22)
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        node = NodeConfig.from_counts(W=8, V=4, M=2)
        assert premise4_k_max_prioritized(problem, kp, node) >= (
            premise4_k_max_scattering(problem, kp, node)
        )


class TestSearchSpace:
    def _space(self, proposal="sp", node=None, n=20, g=6):
        problem = ProblemConfig.from_sizes(N=1 << n, G=1 << g)
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        return k_search_space(problem, kp, kp, KEPLER_K80, node=node, proposal=proposal)

    def test_powers_of_two_ascending(self):
        space = self._space()
        assert space == sorted(space)
        assert all(v & (v - 1) == 0 for v in space)
        assert space[0] == 1

    def test_multi_gpu_space_is_subset(self):
        sp = set(self._space("sp"))
        node = NodeConfig.from_counts(W=8, V=4)
        mps = set(self._space("mps", node))
        assert mps <= sp

    def test_every_k_is_feasible(self):
        node = NodeConfig.from_counts(W=8, V=4)
        problem = ProblemConfig.from_sizes(N=1 << 20, G=64)
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        for k in k_search_space(problem, kp, kp, KEPLER_K80, node=node, proposal="mps"):
            chunks = problem.N // (k * kp.Lx * kp.P)
            assert chunks >= node.M * node.W  # Eq. 2

    def test_unknown_proposal(self):
        with pytest.raises(TuningError):
            self._space("warp-drive")

    def test_mps_requires_node(self):
        with pytest.raises(TuningError):
            self._space("mps", node=None)

    def test_too_small_problem(self):
        problem = ProblemConfig.from_sizes(N=256)
        kp = derive_stage_kernel_params(KEPLER_K80, np.int32)
        with pytest.raises(TuningError, match="smaller than one block"):
            k_search_space(problem, kp, kp, KEPLER_K80)
