"""Benchmark drift sentry: ``repro bench check`` against BENCH baselines.

The committed artifacts' simulated-time fields are deterministic, so the
sentry must (a) pass against the repo's own baselines, (b) flag a
tampered baseline as drift with an explanatory failure, (c) treat a
missing baseline as skipped rather than failed, and (d) reject unknown
suite names loudly. The heavyweight suites (serving, serve) replay real
scans and are exercised by the CI gate itself; here the cheap analytic
and budget-only suites keep the tier-1 run fast.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.bench.regression import SUITES, format_report, run_checks

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDriver:
    def test_unknown_suite_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_checks(repo_root=tmp_path, only=["serving", "nope"])

    def test_missing_baselines_are_skipped_not_failed(self, tmp_path):
        report = run_checks(repo_root=tmp_path)
        assert report["ok"]
        assert set(report["suites"]) == set(SUITES)
        for suite in report["suites"].values():
            assert suite["skipped"] and suite["checked"] == 0
        assert "skipped" in format_report(report)

    def test_only_restricts_suites(self, tmp_path):
        report = run_checks(repo_root=tmp_path, only=["obs_overhead"])
        assert list(report["suites"]) == ["obs_overhead"]


class TestAgainstCommittedBaselines:
    def test_obs_overhead_passes(self):
        report = run_checks(repo_root=REPO_ROOT, only=["obs_overhead"])
        assert report["ok"], format_report(report)
        assert report["suites"]["obs_overhead"]["checked"] >= 2

    def test_single_pass_sweep_passes(self):
        report = run_checks(repo_root=REPO_ROOT, only=["single_pass"])
        assert report["ok"], format_report(report)
        assert report["suites"]["single_pass"]["checked"] > 100
        assert "PASS" in format_report(report)


def tampered(tmp_path: Path, filename: str, mutate) -> Path:
    """Copy one committed baseline into tmp_path with a field perturbed."""
    src = REPO_ROOT / filename
    payload = json.loads(src.read_text())
    mutate(payload)
    (tmp_path / filename).write_text(json.dumps(payload))
    return tmp_path


class TestTamperDetection:
    def test_blown_overhead_budget_is_drift(self, tmp_path):
        def mutate(payload):
            payload["enabled_ratio"] = payload["max_enabled_ratio"] * 2
        root = tampered(tmp_path, "BENCH_obs_overhead.json", mutate)
        report = run_checks(repo_root=root, only=["obs_overhead"])
        assert not report["ok"]
        assert "exceeds budget" in report["suites"]["obs_overhead"]["failures"][0]
        assert "DRIFTED" in format_report(report) and "FAIL" in format_report(report)

    def test_blown_profile_budget_is_drift(self, tmp_path):
        def mutate(payload):
            payload["profile_ratio"] = payload["max_profile_ratio"] + 1.0
        root = tampered(tmp_path, "BENCH_obs_overhead.json", mutate)
        report = run_checks(repo_root=root, only=["obs_overhead"])
        assert not report["ok"]
        assert "profile_ratio" in report["suites"]["obs_overhead"]["failures"][0]

    def test_perturbed_analytic_time_is_drift(self, tmp_path):
        def mutate(payload):
            series = next(iter(payload["series"].values()))
            series[0]["sp_s"] *= 1.01          # 1% >> the 1e-9 tolerance
        root = tampered(tmp_path, "BENCH_single_pass.json", mutate)
        report = run_checks(repo_root=root, only=["single_pass"])
        assert not report["ok"]
        assert any("sp_s" in failure
                   for failure in report["suites"]["single_pass"]["failures"])

    def test_perturbed_crossover_frontier_is_drift(self, tmp_path):
        def mutate(payload):
            key = next(iter(payload["crossover_n_log2"]))
            payload["crossover_n_log2"][key] = 5
        root = tampered(tmp_path, "BENCH_single_pass.json", mutate)
        report = run_checks(repo_root=root, only=["single_pass"])
        assert not report["ok"]
        assert any("crossover" in failure
                   for failure in report["suites"]["single_pass"]["failures"])

    def test_untouched_copy_still_passes(self, tmp_path):
        shutil.copy(REPO_ROOT / "BENCH_single_pass.json",
                    tmp_path / "BENCH_single_pass.json")
        report = run_checks(repo_root=tmp_path, only=["single_pass"])
        assert report["ok"]
