"""Tests for the prefix-network schedules (Kogge-Stone, Sklansky, Brent-Kung).

Every network, run to completion, must turn any input into its inclusive
scan — the defining property. Depth/work match the textbook formulas.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.primitives.networks import (
    brent_kung_scan,
    brent_kung_schedule,
    kogge_stone_scan,
    kogge_stone_schedule,
    run_schedule,
    schedule_depth,
    schedule_work,
    sklansky_scan,
    sklansky_schedule,
)
from repro.primitives.operators import MAX, MUL

SIZES = [1, 2, 4, 8, 16, 32, 64, 256]
SCANS = [
    ("kogge_stone", kogge_stone_scan),
    ("sklansky", sklansky_scan),
    ("brent_kung", brent_kung_scan),
]
SCHEDULES = [
    ("kogge_stone", kogge_stone_schedule),
    ("sklansky", sklansky_schedule),
    ("brent_kung", brent_kung_schedule),
]


class TestCorrectness:
    @pytest.mark.parametrize("name,scan_fn", SCANS)
    @pytest.mark.parametrize("n", SIZES)
    def test_inclusive_scan(self, name, scan_fn, n, rng):
        data = rng.integers(-100, 100, n).astype(np.int64)
        np.testing.assert_array_equal(scan_fn(data), np.cumsum(data), err_msg=name)

    @pytest.mark.parametrize("name,scan_fn", SCANS)
    def test_batched_leading_axes(self, name, scan_fn, rng):
        data = rng.integers(0, 100, (3, 5, 32)).astype(np.int64)
        np.testing.assert_array_equal(scan_fn(data), np.cumsum(data, axis=-1))

    @pytest.mark.parametrize("name,scan_fn", SCANS)
    def test_max_operator(self, name, scan_fn, rng):
        data = rng.integers(-100, 100, 64).astype(np.int32)
        np.testing.assert_array_equal(scan_fn(data, MAX), np.maximum.accumulate(data))

    @pytest.mark.parametrize("name,scan_fn", SCANS)
    def test_mul_operator(self, name, scan_fn, rng):
        data = rng.integers(1, 3, 16).astype(np.int64)
        np.testing.assert_array_equal(scan_fn(data, MUL), np.multiply.accumulate(data))

    @pytest.mark.parametrize("name,scan_fn", SCANS)
    @given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30)
    def test_property_random_sizes(self, name, scan_fn, log_n, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-1000, 1000, 1 << log_n).astype(np.int64)
        np.testing.assert_array_equal(scan_fn(data), np.cumsum(data))


class TestStructure:
    @pytest.mark.parametrize("n", [2, 8, 32, 128])
    def test_kogge_stone_depth_and_work(self, n):
        sched = kogge_stone_schedule(n)
        log_n = n.bit_length() - 1
        assert schedule_depth(sched) == log_n
        assert schedule_work(sched) == sum(n - (1 << d) for d in range(log_n))

    @pytest.mark.parametrize("n", [2, 8, 32, 128])
    def test_sklansky_depth_and_work(self, n):
        sched = sklansky_schedule(n)
        log_n = n.bit_length() - 1
        assert schedule_depth(sched) == log_n
        assert schedule_work(sched) == (n // 2) * log_n

    @pytest.mark.parametrize("n", [4, 8, 32, 128])
    def test_brent_kung_work_efficient(self, n):
        # Brent-Kung does at most 2n operator applications: work-efficient.
        assert schedule_work(brent_kung_schedule(n)) < 2 * n

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_brent_kung_deeper_than_sklansky(self, n):
        assert schedule_depth(brent_kung_schedule(n)) > schedule_depth(
            sklansky_schedule(n)
        )

    @pytest.mark.parametrize("name,builder", SCHEDULES)
    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_no_write_conflicts_within_steps(self, name, builder, n):
        for step in builder(n):
            dsts = [d for d, _ in step]
            assert len(set(dsts)) == len(dsts)

    @pytest.mark.parametrize("name,builder", SCHEDULES)
    def test_size_one_is_empty(self, name, builder):
        assert builder(1) == ()

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            kogge_stone_schedule(12)
        with pytest.raises(ConfigurationError):
            sklansky_schedule(0)


class TestRunSchedule:
    def test_does_not_mutate_input(self, rng):
        data = rng.integers(0, 10, 16).astype(np.int64)
        original = data.copy()
        run_schedule(data, kogge_stone_schedule(16))
        np.testing.assert_array_equal(data, original)

    def test_axis_argument(self, rng):
        data = rng.integers(0, 10, (8, 4)).astype(np.int64)
        out = run_schedule(data, kogge_stone_schedule(8), axis=0)
        np.testing.assert_array_equal(out, np.cumsum(data, axis=0))

    def test_rejects_duplicate_destinations(self):
        bad = [[(1, 0), (1, 2)]]
        with pytest.raises(ConfigurationError, match="destination"):
            run_schedule(np.arange(4), bad)

    def test_simultaneous_read_semantics(self):
        # Step where one pair's source is another pair's destination: the
        # read must observe the PRE-step value.
        data = np.array([1, 10, 100], dtype=np.int64)
        step = [(1, 0), (2, 1)]  # x1 += x0 ; x2 += old x1
        out = run_schedule(data, [step])
        np.testing.assert_array_equal(out, [1, 11, 110])
