"""Tests for Scan-MPS (problem scattering) and problem parallelism (Case 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.interconnect.topology import tsubame_kfc
from repro.core.multi_gpu import ScanMPS, ScanProblemParallel
from repro.core.params import NodeConfig, ProblemConfig


class TestScanMPS:
    @pytest.mark.parametrize("w,v", [(2, 2), (4, 4), (8, 4)])
    def test_correct_across_configs(self, machine, rng, w, v):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=w, V=v)
        result = ScanMPS(machine, node).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))
        assert result.config["W"] == w

    def test_exclusive(self, machine, rng):
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        result = ScanMPS(machine, node).run(data, inclusive=False)
        expected = np.zeros_like(data)
        expected[:, 1:] = np.cumsum(data, axis=1, dtype=np.int32)[:, :-1]
        np.testing.assert_array_equal(result.output, expected)

    def test_phases(self, machine, rng):
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        result = ScanMPS(machine, node).run(data)
        assert result.trace.phases() == [
            "stage1", "aux_gather", "stage2", "aux_scatter", "stage3",
        ]

    def test_p2p_transfers_within_network(self, machine, rng):
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        result = ScanMPS(machine, node).run(data)
        kinds = {r.kind for r in result.trace.transfer_records()}
        assert "host_staged" not in kinds
        assert "p2p" in kinds

    def test_w8_uses_host_staging_with_per_problem_messages(self, machine, rng):
        g = 8
        data = rng.integers(0, 100, (g, 1 << 13)).astype(np.int32)
        node = NodeConfig.from_counts(W=8, V=4)
        result = ScanMPS(machine, node).run(data)
        staged = [r for r in result.trace.transfer_records() if r.kind == "host_staged"]
        assert staged, "W=8 spans two PCIe networks and must stage through host"
        assert all(r.messages == g for r in staged)  # one copy per problem

    def test_block_independence(self, blockwise_machine, machine, rng):
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        out_a = ScanMPS(machine, node).run(data).output
        out_b = ScanMPS(blockwise_machine, node).run(data).output
        np.testing.assert_array_equal(out_a, out_b)

    def test_memory_released_on_all_gpus(self, machine, rng):
        before = [g.pool.used for g in machine.gpus]
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        ScanMPS(machine, NodeConfig.from_counts(W=8, V=4)).run(data)
        assert [g.pool.used for g in machine.gpus] == before

    def test_m_greater_one_rejected(self, machine):
        with pytest.raises(ConfigurationError, match="single-node"):
            ScanMPS(machine, NodeConfig.from_counts(W=4, V=4, M=2))

    def test_respects_eq2_in_default_plan(self, machine):
        node = NodeConfig.from_counts(W=8, V=4)
        executor = ScanMPS(machine, node)
        problem = ProblemConfig.from_sizes(N=1 << 16, G=4)
        plan = executor.plan_for(problem)
        chunks = problem.N // plan.chunk_size
        assert chunks >= node.W  # every GPU owns at least one chunk

    @given(
        log_n=st.integers(min_value=8, max_value=13),
        log_g=st.integers(min_value=0, max_value=3),
        w=st.sampled_from([2, 4, 8]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, log_n, log_g, w, seed):
        machine = tsubame_kfc(1)
        rng = np.random.default_rng(seed)
        data = rng.integers(-1000, 1000, (1 << log_g, 1 << log_n)).astype(np.int64)
        node = NodeConfig.from_counts(W=w, V=min(w, 4))
        result = ScanMPS(machine, node).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=-1))


class TestProblemParallel:
    def test_correct(self, machine, rng):
        data = rng.integers(0, 100, (8, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        result = ScanProblemParallel(machine, node).run(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))
        assert result.proposal == "scan-pp"

    def test_no_transfers_at_all(self, machine, rng):
        """Case 1: 'there is no communication among GPUs'."""
        data = rng.integers(0, 100, (8, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=4, V=4)
        result = ScanProblemParallel(machine, node).run(data)
        real_transfers = [
            r for r in result.trace.transfer_records() if r.kind != "dispatch"
        ]
        assert real_transfers == []

    def test_fewer_problems_than_gpus(self, machine, rng):
        data = rng.integers(0, 100, (2, 4096)).astype(np.int32)
        node = NodeConfig.from_counts(W=8, V=4)
        result = ScanProblemParallel(machine, node).run(data)
        assert result.config["W"] == 2  # never more GPUs than problems
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_gpus_work_concurrently(self, machine, rng):
        """Per-GPU sub-batches overlap: W GPUs beat one GPU on wall-clock
        once the problems are large enough to amortise per-GPU overheads."""
        data = rng.integers(0, 100, (8, 1 << 18)).astype(np.int32)
        t1 = ScanProblemParallel(machine, NodeConfig.from_counts(W=1, V=1)).run(data)
        t4 = ScanProblemParallel(machine, NodeConfig.from_counts(W=4, V=4)).run(data)
        assert t4.total_time_s < t1.total_time_s
