"""Tests for the public scan() facade and Premise-4 proposal selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro import scan, batch_scan, recommend_proposal
from repro.core.params import NodeConfig, ProblemConfig


class TestRecommendation:
    def test_single_gpu(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 20)
        assert recommend_proposal(machine, NodeConfig.from_counts(W=1, V=1), problem) == "sp"

    def test_multi_node_single_problem(self, cluster):
        problem = ProblemConfig.from_sizes(N=1 << 20)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        assert recommend_proposal(cluster, node, problem) == "mn-mps"

    def test_multi_node_batch_avoids_mpi(self, cluster):
        """With enough problems per network, the no-MPI multi-node MP-PC
        wins (Section 4.1.1; quantified in benchmarks/bench_scaling.py)."""
        problem = ProblemConfig.from_sizes(N=1 << 16, G=16)
        node = NodeConfig.from_counts(W=4, V=4, M=2)
        assert recommend_proposal(cluster, node, problem) == "mppc"

    def test_one_network_uses_mps(self, machine):
        """W <= gpus/network: pure P2P, scattering is fine."""
        problem = ProblemConfig.from_sizes(N=1 << 20, G=16)
        node = NodeConfig.from_counts(W=4, V=4)
        assert recommend_proposal(machine, node, problem) == "mps"

    def test_cross_network_batch_uses_mppc(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 20, G=16)
        node = NodeConfig.from_counts(W=8, V=4)
        assert recommend_proposal(machine, node, problem) == "mppc"

    def test_cross_network_single_problem_uses_mps(self, machine):
        """G=1 cannot be partitioned by network; host-staged MPS it is."""
        problem = ProblemConfig.from_sizes(N=1 << 20, G=1)
        node = NodeConfig.from_counts(W=8, V=4)
        assert recommend_proposal(machine, node, problem) == "mps"


class TestScanFacade:
    def test_default_topology(self, rng):
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        result = scan(data)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    @pytest.mark.parametrize("proposal", ["sp", "pp", "mps", "mppc"])
    def test_each_proposal(self, machine, rng, proposal):
        data = rng.integers(0, 100, (8, 4096)).astype(np.int32)
        result = scan(data, topology=machine, proposal=proposal, W=4, V=4)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_mn_proposal(self, cluster, rng):
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        result = scan(data, topology=cluster, proposal="mn-mps", W=4, V=4, M=2)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_auto_selects_and_runs(self, machine, rng):
        data = rng.integers(0, 100, (16, 4096)).astype(np.int32)
        result = scan(data, topology=machine, proposal="auto", W=8, V=4)
        assert result.proposal == "scan-mp-pc"
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_v_defaults_to_network_width(self, machine, rng):
        data = rng.integers(0, 100, (4, 4096)).astype(np.int32)
        result = scan(data, topology=machine, proposal="mps", W=8)
        assert result.config["V"] == 4

    def test_k_tune(self, machine, rng):
        data = rng.integers(0, 100, (8, 1 << 13)).astype(np.int32)
        result = scan(data, topology=machine, proposal="sp", K="tune")
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_bad_k_rejected(self, machine, rng):
        data = rng.integers(0, 100, (2, 1024)).astype(np.int32)
        with pytest.raises(ConfigurationError, match="K must be"):
            scan(data, topology=machine, K="huge")

    def test_bad_proposal_rejected(self, machine, rng):
        data = rng.integers(0, 100, (2, 1024)).astype(np.int32)
        with pytest.raises(ConfigurationError, match="unknown proposal"):
            scan(data, topology=machine, proposal="teleport")

    def test_collect_false_skips_output(self, machine, rng):
        data = rng.integers(0, 100, (2, 1024)).astype(np.int32)
        result = scan(data, topology=machine, collect=False)
        assert result.output is None
        assert result.total_time_s > 0

    def test_batch_scan_alias(self, machine, rng):
        data = rng.integers(0, 100, (4, 1024)).astype(np.int32)
        result = batch_scan(data, topology=machine)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))

    def test_float_data(self, machine, rng):
        data = rng.random((2, 1024)).astype(np.float64)
        result = scan(data, topology=machine, proposal="sp")
        np.testing.assert_allclose(result.output, np.cumsum(data, axis=1), rtol=1e-12)
