"""Tests for the transfer engine: routing, pricing, functional copies."""

import numpy as np
import pytest

from repro.errors import TransferError
from repro.gpusim.events import Trace
from repro.interconnect.transfer import TransferCostParams, TransferEngine


@pytest.fixture
def engine(machine):
    return TransferEngine(machine)


class TestRouting:
    def test_local(self, machine, engine):
        g = machine.gpu(0)
        assert engine.route_kind(g, g) == "local"

    def test_p2p_same_network(self, machine, engine):
        assert engine.route_kind(machine.gpu(0), machine.gpu(3)) == "p2p"

    def test_host_staged_cross_network(self, machine, engine):
        assert engine.route_kind(machine.gpu(0), machine.gpu(4)) == "host_staged"

    def test_cross_node_rejected(self, cluster):
        engine = TransferEngine(cluster)
        with pytest.raises(TransferError, match="MPI"):
            engine.route_kind(cluster.gpu(0), cluster.gpu(8))


class TestCopy:
    def test_functional_copy_moves_data(self, machine, engine, rng):
        src_gpu, dst_gpu = machine.gpu(0), machine.gpu(1)
        host = rng.integers(0, 100, (4, 16)).astype(np.int32)
        src = src_gpu.upload(host)
        dst = dst_gpu.alloc((4, 16), np.int32, fill=0)
        trace = Trace()
        record = engine.copy(trace, "xfer", src, dst)
        np.testing.assert_array_equal(dst.to_host(), host)
        assert record.kind == "p2p"
        assert record.nbytes == host.nbytes
        assert trace.records == [record]

    def test_non_functional_skips_data(self, machine, engine):
        src = machine.gpu(0).alloc((8,), np.int32, fill=5)
        dst = machine.gpu(1).alloc((8,), np.int32, fill=0)
        engine.copy(Trace(), "xfer", src, dst, functional=False)
        assert dst.to_host().sum() == 0  # untouched

    def test_shape_mismatch(self, machine, engine):
        src = machine.gpu(0).alloc((8,), np.int32)
        dst = machine.gpu(1).alloc((4,), np.int32)
        with pytest.raises(TransferError, match="shape"):
            engine.copy(Trace(), "x", src, dst)

    def test_dtype_mismatch(self, machine, engine):
        src = machine.gpu(0).alloc((8,), np.int32)
        dst = machine.gpu(1).alloc((8,), np.int64)
        with pytest.raises(TransferError, match="dtype"):
            engine.copy(Trace(), "x", src, dst)

    def test_bad_message_count(self, machine, engine):
        src = machine.gpu(0).alloc((8,), np.int32, fill=0)
        dst = machine.gpu(1).alloc((8,), np.int32, fill=0)
        with pytest.raises(TransferError, match="messages"):
            engine.copy(Trace(), "x", src, dst, messages=0)


class TestPricing:
    def test_p2p_faster_than_host_staged(self, machine, engine):
        host = np.zeros((64, 1024), dtype=np.int32)
        src = machine.gpu(0).upload(host)
        p2p_dst = machine.gpu(1).alloc(host.shape, np.int32, fill=0)
        staged_dst = machine.gpu(4).alloc(host.shape, np.int32, fill=0)
        trace = Trace()
        t_p2p = engine.copy(trace, "a", src, p2p_dst).time_s
        t_staged = engine.copy(trace, "b", src, staged_dst).time_s
        assert t_staged > t_p2p

    def test_messages_scale_latency(self, machine, engine):
        src = machine.gpu(0).alloc((1024,), np.int32, fill=0)
        dst = machine.gpu(4).alloc((1024,), np.int32, fill=0)
        trace = Trace()
        t1 = engine.copy(trace, "a", src, dst, messages=1).time_s
        t64 = engine.copy(trace, "b", src, dst, messages=64).time_s
        expected_extra = 63 * engine.params.host_staged_latency_s
        assert t64 - t1 == pytest.approx(expected_extra)

    def test_lanes(self, machine, engine):
        src = machine.gpu(0).alloc((8,), np.int32, fill=0)
        trace = Trace()
        r_p2p = engine.copy(trace, "a", src, machine.gpu(1).alloc((8,), np.int32, fill=0))
        r_staged = engine.copy(trace, "b", src, machine.gpu(4).alloc((8,), np.int32, fill=0))
        assert r_p2p.lane == "pcie0.0"
        assert r_staged.lane == "host0"

    def test_custom_params(self, machine):
        fast = TransferEngine(machine, TransferCostParams(p2p_bandwidth_gbs=100.0))
        slow = TransferEngine(machine, TransferCostParams(p2p_bandwidth_gbs=1.0))
        src = machine.gpu(0).alloc((1 << 20,), np.int32, fill=0)
        dst = machine.gpu(1).alloc((1 << 20,), np.int32, fill=0)
        t_fast = fast.copy(Trace(), "a", src, dst).time_s
        t_slow = slow.copy(Trace(), "a", src, dst).time_s
        assert t_slow > t_fast * 10


class TestDispatch:
    def test_ordinal_scales_time(self, machine, engine):
        trace = Trace()
        r1 = engine.record_dispatch(trace, "s", machine.gpu(0), ordinal=1)
        r3 = engine.record_dispatch(trace, "s", machine.gpu(1), ordinal=3)
        assert r3.time_s == pytest.approx(3 * r1.time_s)
        assert r1.lane == "gpu:0" and r3.lane == "gpu:1"
        assert r1.kind == "dispatch" and r1.nbytes == 0
