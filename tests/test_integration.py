"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import scan, tsubame_kfc
from repro.baselines import ALL_BASELINES
from repro.core.params import NodeConfig
from repro.core.tuner import PremiseTuner


class TestQuickstartFlow:
    """The README quickstart, as a test."""

    def test_quickstart(self):
        machine = tsubame_kfc()
        rng = np.random.default_rng(0)
        data = rng.integers(0, 100, (64, 4096)).astype(np.int32)
        result = scan(data, topology=machine, W=4, V=4)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))
        assert result.throughput_gelems > 0
        assert result.total_time_s > 0


class TestAllProposalsAgree:
    def test_same_answer_everywhere(self, cluster, rng):
        data = rng.integers(-500, 500, (8, 1 << 13)).astype(np.int64)
        expected = np.cumsum(data, axis=1)
        outputs = [
            scan(data, topology=cluster, proposal="sp").output,
            scan(data, topology=cluster, proposal="pp", W=4).output,
            scan(data, topology=cluster, proposal="mps", W=4, V=4).output,
            scan(data, topology=cluster, proposal="mppc", W=8, V=4).output,
            scan(data, topology=cluster, proposal="mn-mps", W=4, V=4, M=2).output,
        ]
        for out in outputs:
            np.testing.assert_array_equal(out, expected)


class TestTunedEndToEnd:
    def test_tuned_k_beats_or_matches_worst(self, machine, rng):
        data = rng.integers(0, 100, (16, 1 << 13)).astype(np.int32)
        tuner = PremiseTuner(machine)
        outcome = tuner.tune_sp(data)
        worst = max(c.time_s for c in outcome.candidates)
        assert outcome.best.time_s <= worst


class TestLibraryComparison:
    def test_functional_agreement_with_baselines(self, machine, rng):
        data = rng.integers(0, 100, (32, 1 << 12)).astype(np.int32)
        expected = np.cumsum(data, axis=1, dtype=np.int32)
        ours = scan(data, topology=machine, proposal="mppc", W=8, V=4)
        np.testing.assert_array_equal(ours.output, expected)
        for lib in ALL_BASELINES:
            theirs = lib.run(data)
            np.testing.assert_array_equal(theirs.output, expected)

    def test_batch_proposal_wins_at_paper_scale(self, machine):
        """At the paper's 2^28 total payload, the batch proposal beats every
        library (estimated at full scale; small totals are overhead-bound
        and are NOT expected to win — Figure 11's G=1 small-N story)."""
        from repro.core.params import ProblemConfig
        from repro.core.prioritized import ScanMPPC

        problem = ProblemConfig.from_sizes(N=1 << 13, G=1 << 15)
        ours = ScanMPPC(machine, NodeConfig.from_counts(W=8, V=4)).estimate(problem)
        for lib in ALL_BASELINES:
            t_lib, _ = lib.time_batch(problem.N, problem.G)
            assert ours.total_time_s < t_lib


class TestScalesAcrossMachines:
    @pytest.mark.parametrize("arch_name", ["k80", "maxwell", "pascal"])
    def test_other_architectures(self, arch_name, rng):
        """The premise derivation adapts to other architecture presets."""
        from repro.gpusim.arch import get_architecture
        from repro.interconnect.topology import SystemTopology

        topo = SystemTopology(1, 2, 4, arch=get_architecture(arch_name))
        data = rng.integers(0, 100, (4, 1 << 13)).astype(np.int32)
        result = scan(data, topology=topo, proposal="mps", W=4, V=4)
        np.testing.assert_array_equal(result.output, np.cumsum(data, axis=1, dtype=np.int32))
