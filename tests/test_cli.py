"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Premise 1" in out
        assert "Tesla K80" in out


class TestTable3:
    def test_default_arch(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "7168" in out and "Premise 1" in out

    def test_other_arch(self, capsys):
        assert main(["table3", "--arch", "maxwell"]) == 0
        assert "GM200" in capsys.readouterr().out


class TestScan:
    def test_basic(self, capsys):
        assert main(["scan", "--n", "12", "--g", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified against numpy reference" in out
        assert "throughput" in out

    def test_multi_gpu(self, capsys):
        assert main(["scan", "--n", "13", "--g", "3",
                     "--proposal", "mppc", "--w", "8", "--v", "4"]) == 0
        assert "scan-mp-pc" in capsys.readouterr().out

    def test_multi_node(self, capsys):
        assert main(["scan", "--n", "13", "--g", "2", "--proposal", "mn-mps",
                     "--w", "4", "--v", "4", "--m", "2"]) == 0
        assert "mpi_gather" in capsys.readouterr().out

    def test_exclusive_and_operator(self, capsys):
        assert main(["scan", "--n", "10", "--g", "1",
                     "--operator", "max", "--exclusive"]) == 0

    def test_tune(self, capsys):
        assert main(["scan", "--n", "13", "--g", "3", "--tune"]) == 0

    def test_bad_proposal_rejected(self):
        with pytest.raises(SystemExit):
            main(["scan", "--proposal", "warp-drive"])

    def test_json_bundle(self, capsys):
        import json

        assert main(["scan", "--n", "12", "--g", "3",
                     "--proposal", "mps", "--w", "4", "--json"]) == 0
        out = capsys.readouterr().out
        bundle = json.loads(out)  # nothing but the JSON on stdout
        assert bundle["proposal"] == "scan-mps"
        assert bundle["verified"] is True
        assert bundle["N"] == 1 << 12 and bundle["G"] == 1 << 3
        assert isinstance(bundle["K"], int)
        assert set(bundle["breakdown_s"]) >= {"stage1", "stage2", "stage3"}
        assert bundle["metrics"]["kernel_count"] > 0

    def test_trace_out(self, tmp_path, capsys):
        import json

        from repro import obs

        path = tmp_path / "trace.json"
        try:
            assert main(["scan", "--n", "12", "--g", "2",
                         "--trace-out", str(path)]) == 0
        finally:
            obs.disable()
            obs.reset()
        payload = json.loads(path.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"stage1", "stage2", "stage3"} <= names


class TestServe:
    def _run(self, argv):
        from repro import obs

        try:
            return main(argv)
        finally:
            obs.disable()
            obs.reset()

    def test_replay_with_baseline(self, capsys):
        assert self._run(["serve", "--requests", "16", "--sizes", "12"]) == 0
        out = capsys.readouterr().out
        assert "replayed 16 requests" in out
        assert "16 verified against numpy" in out
        assert "0 rejected" in out
        assert "coalescing speedup" in out

    def test_json_report(self, capsys):
        import json

        assert self._run(["serve", "--requests", "24", "--sizes", "10,11",
                          "--max-batch", "8", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 24
        assert report["verified"] == 24
        assert report["request_failures"] == 0
        assert report["batches"] >= 2  # two size keys cannot share a batch
        assert report["coalesce_speedup"] > 1.0
        assert report["latency"]["p95"] >= report["latency"]["p50"]

    def test_backpressure_is_reported(self, capsys):
        assert self._run(["serve", "--requests", "12", "--sizes", "10",
                          "--max-batch", "16", "--max-queue", "8"]) == 0
        assert "4 rejected" in capsys.readouterr().out

    def test_bad_sizes_rejected(self, capsys):
        assert self._run(["serve", "--sizes", "12,banana"]) == 2
        assert "--sizes" in capsys.readouterr().err

    def test_adaptive_flag_reports_decisions(self, capsys):
        assert self._run(["serve", "--requests", "16", "--sizes", "12",
                          "--max-batch", "4", "--adaptive"]) == 0
        out = capsys.readouterr().out
        assert "16 verified against numpy" in out
        assert "control decision(s)" in out
        assert "final max_batch" in out

    def test_adaptive_json_carries_decision_log(self, capsys):
        import json

        assert self._run(["serve", "--requests", "16", "--sizes", "12",
                          "--max-batch", "4", "--adaptive", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verified"] == 16
        assert isinstance(report["decisions"], list)
        for decision in report["decisions"]:
            assert {"at_s", "controller", "action", "reason",
                    "before", "after"} <= set(decision)


class TestObsCommand:
    def test_report_and_exposition(self, capsys, tmp_path):
        from repro import obs

        path = tmp_path / "obs_trace.json"
        try:
            assert main(["obs", "--n", "12", "--g", "3", "--calls", "3",
                         "--trace-out", str(path)]) == 0
        finally:
            obs.disable()
            obs.reset()
        out = capsys.readouterr().out
        assert "calls: 3 (2 warm, 1 cold)" in out
        assert "p95" in out
        assert "# TYPE scan_calls counter" in out
        assert 'scan_calls{proposal="mps"} 3' in out
        assert path.exists()


class TestFigures:
    @pytest.mark.parametrize("number", ["9", "10", "11", "12"])
    def test_single_node_figures(self, capsys, number):
        assert main(["figure", number, "--total", "18"]) == 0
        out = capsys.readouterr().out
        assert f"Figure {number}" in out

    def test_figure13_with_study(self, capsys):
        assert main(["figure", "13", "--total", "18"]) == 0
        out = capsys.readouterr().out
        assert "combination study" in out

    def test_chart(self, capsys):
        assert main(["figure", "12", "--total", "18", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "--total", "18"]) == 0
        out = capsys.readouterr().out
        assert "mpi_gather" in out and "stage3" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "7"])

    def test_csv_export(self, capsys, tmp_path):
        csv_path = tmp_path / "fig.csv"
        assert main(["figure", "12", "--total", "16", "--csv", str(csv_path)]) == 0
        content = csv_path.read_text()
        assert content.startswith("n,")
        assert "Scan-MP-PC" in content
        assert len(content.splitlines()) == 1 + (16 - 13 + 1)

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "selfcheck passed" in out
        assert "chained scan" in out


class TestAsciiChart:
    def test_renders_all_series(self):
        from repro.bench.reporting import ascii_chart
        from repro.bench.runner import FigureSeries

        series = [
            FigureSeries("ours", [(13, 10.0), (14, 20.0), (15, 40.0)]),
            FigureSeries("lib", [(13, 1.0), (14, 2.0), (15, 4.0)]),
        ]
        text = ascii_chart("T", series)
        assert "o" in text and "x" in text and "legend:" in text

    def test_log_scale(self):
        from repro.bench.reporting import ascii_chart
        from repro.bench.runner import FigureSeries

        series = [FigureSeries("s", [(1, 0.001), (2, 1000.0)])]
        text = ascii_chart("T", series, log_y=True)
        assert "legend:" in text

    def test_empty(self):
        from repro.bench.reporting import ascii_chart

        assert ascii_chart("T", []) == "T"


class TestScanProfile:
    def test_profile_prints_attribution(self, capsys):
        assert main(["scan", "--n", "12", "--g", "3",
                     "--proposal", "mps", "--w", "4", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "attribution" in out and "critical path" in out

    def test_profile_rides_in_json_bundle(self, capsys):
        import json

        assert main(["scan", "--n", "12", "--g", "3", "--proposal", "mps",
                     "--w", "4", "--json", "--profile"]) == 0
        bundle = json.loads(capsys.readouterr().out)
        profile = bundle["profile"]
        assert profile["total_time_s"] > 0
        assert sum(profile["categories"].values()) == profile["total_time_s"]

    def test_flame_out_writes_folded_stacks(self, tmp_path, capsys):
        path = tmp_path / "scan.folded"
        assert main(["scan", "--n", "12", "--g", "2",
                     "--flame-out", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines and all(" " in line and ";" in line for line in lines)
        assert "flamegraph written" in capsys.readouterr().out


class TestBenchCheck:
    REPO_ROOT = None  # set lazily; tests may not run from the repo root

    def _root(self):
        from pathlib import Path

        return str(Path(__file__).resolve().parent.parent)

    def test_check_passes_against_committed_baseline(self, capsys):
        assert main(["bench", "check", "--repo-root", self._root(),
                     "--only", "obs_overhead"]) == 0
        out = capsys.readouterr().out
        assert "bench check: PASS" in out

    def test_check_json_report(self, capsys):
        import json

        assert main(["bench", "check", "--repo-root", self._root(),
                     "--only", "obs_overhead", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and "obs_overhead" in report["suites"]

    def test_missing_baselines_skip_and_pass(self, tmp_path, capsys):
        assert main(["bench", "check", "--repo-root", str(tmp_path)]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "check", "--only", "warp-drive"])

    def test_restart_suite_registered(self, capsys):
        assert main(["bench", "check", "--repo-root", self._root(),
                     "--only", "restart"]) == 0
        out = capsys.readouterr().out
        assert "restart: ok" in out and "bench check: PASS" in out


class TestControl:
    def test_ab_report(self, capsys):
        assert main(["control", "--requests", "48"]) == 0
        out = capsys.readouterr().out
        assert "adaptive vs static (A/B replay)" in out
        assert "burst p99 improvement" in out
        assert "deterministic: yes" in out
        assert "decision log (bursty/adaptive" in out

    def test_json_report_is_replay_complete(self, capsys):
        import json

        assert main(["control", "--requests", "48", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["deterministic"] is True
        for workload in ("bursty", "steady"):
            for arm in ("static", "adaptive"):
                cell = report[workload][arm]
                assert cell["verified"] == cell["served"]
                assert cell["repeat_identical"]
        assert report["bursty"]["adaptive"]["decisions"] > 0
        assert report["bursty"]["p99_improvement"] > 0
        assert report["params"]["requests"] == 48


class TestSnapshotCommand:
    def test_save_then_load(self, capsys, tmp_path):
        path = str(tmp_path / "snap.json")
        assert main(["snapshot", "save", path, "--n", "12", "--g", "2"]) == 0
        out = capsys.readouterr().out
        assert "snapshot written to" in out and "plans" in out

        assert main(["snapshot", "load", path]) == 0
        out = capsys.readouterr().out
        assert "restores onto this machine: yes" in out

    def test_load_missing_file_fails(self, capsys, tmp_path):
        assert main(["snapshot", "load", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_save_defaults_to_cache_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["snapshot", "save", "--n", "12", "--g", "2"]) == 0
        assert (tmp_path / "snapshot.json").exists()

    def test_scan_with_snapshot(self, capsys, tmp_path):
        path = str(tmp_path / "snap.json")
        assert main(["snapshot", "save", path, "--n", "12", "--g", "2"]) == 0
        capsys.readouterr()
        assert main(["scan", "--n", "12", "--g", "2",
                     "--snapshot", path]) == 0
        captured = capsys.readouterr()
        assert "verified against numpy reference" in captured.out
        assert "not applicable" not in captured.err

    def test_serve_with_snapshot(self, capsys, tmp_path):
        path = str(tmp_path / "snap.json")
        assert main(["snapshot", "save", path, "--n", "12", "--g", "2"]) == 0
        capsys.readouterr()
        assert main(["serve", "--requests", "8", "--sizes", "12",
                     "--snapshot", path]) == 0
        assert "restored snapshot:" in capsys.readouterr().out
