"""Unit tests for the reference sequential scans."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.primitives.operators import MAX, MUL
from repro.primitives.sequential import exclusive_scan, inclusive_scan, reduce


class TestInclusive:
    def test_matches_cumsum(self, rng):
        data = rng.integers(0, 100, (4, 64)).astype(np.int64)
        np.testing.assert_array_equal(inclusive_scan(data), np.cumsum(data, axis=-1))

    def test_axis_zero(self, rng):
        data = rng.integers(0, 100, (8, 8)).astype(np.int64)
        np.testing.assert_array_equal(
            inclusive_scan(data, axis=0), np.cumsum(data, axis=0)
        )

    def test_max_operator(self, rng):
        data = rng.integers(-50, 50, 128).astype(np.int32)
        np.testing.assert_array_equal(
            inclusive_scan(data, MAX), np.maximum.accumulate(data)
        )


class TestExclusive:
    def test_shifted_inclusive(self, rng):
        data = rng.integers(0, 100, 64).astype(np.int64)
        exc = exclusive_scan(data)
        assert exc[0] == 0
        np.testing.assert_array_equal(exc[1:], np.cumsum(data)[:-1])

    def test_mul_starts_at_one(self, rng):
        data = rng.integers(1, 4, 16).astype(np.int64)
        exc = exclusive_scan(data, MUL)
        assert exc[0] == 1
        np.testing.assert_array_equal(exc[1:], np.multiply.accumulate(data)[:-1])

    def test_batched(self, rng):
        data = rng.integers(0, 100, (5, 32)).astype(np.int64)
        exc = exclusive_scan(data)
        for row_in, row_out in zip(data, exc):
            np.testing.assert_array_equal(row_out, exclusive_scan(row_in))

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_inclusive_exclusive_relation(self, values):
        data = np.asarray(values, dtype=np.int64)
        inc = inclusive_scan(data)
        exc = exclusive_scan(data)
        np.testing.assert_array_equal(inc, exc + data)


class TestReduce:
    def test_matches_sum(self, rng):
        data = rng.integers(0, 100, (3, 77)).astype(np.int64)
        np.testing.assert_array_equal(reduce(data), data.sum(axis=-1))

    def test_operator(self, rng):
        data = rng.integers(0, 100, 50).astype(np.int64)
        assert reduce(data, MAX) == data.max()
