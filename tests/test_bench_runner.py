"""Tests for the figure-regeneration sweep runners (scaled-down totals)."""

import pytest

from repro.bench.reporting import format_breakdown_table, format_series_table
from repro.bench.runner import (
    FigureSeries,
    best_estimate_over_k,
    figure9_series,
    figure10_series,
    figure11_series,
    figure12_series,
    figure13_series,
    figure13_combination_study,
    figure14_breakdown,
    mean_speedup,
)
from repro.core.params import ProblemConfig
from repro.errors import TuningError

TOTAL = 20  # scaled total: 2^20 elements keeps the sweeps fast in tests


class TestBestEstimate:
    def test_returns_fastest_k(self, machine):
        problem = ProblemConfig.from_sizes(N=1 << 18, G=4)
        best = best_estimate_over_k(machine, problem, "sp")
        from repro.core.single_gpu import ScanSP

        for k in (1, 4, 16):
            other = ScanSP(machine.gpus[0], K=k).estimate(problem)
            assert best.total_time_s <= other.total_time_s + 1e-15


class TestSeries:
    def test_figure9(self, machine):
        series = figure9_series(machine, ws=(1, 2), total_log2=TOTAL)
        assert [s.label for s in series] == ["Scan-MPS W=1", "Scan-MPS W=2"]
        assert len(series[0].points) == TOTAL - 13 + 1

    def test_figure10_omits_last_n(self, machine):
        series = figure10_series(machine, configs=((4, 2),), total_log2=TOTAL)
        assert series[0].points[-1][0] == TOTAL - 1

    def test_figure11_has_all_series(self, machine):
        series = figure11_series(machine, n_min=13, n_max=15)
        labels = [s.label for s in series]
        assert labels[0] == "Scan multi-GPU (best W,V)"
        assert "cub" in labels and "thrust" in labels
        assert len(series) == 7

    def test_figure12(self, machine):
        series = figure12_series(machine, total_log2=TOTAL)
        ours = series[0]
        assert all(tp > 0 for _, tp in ours.points)

    def test_figure13(self, cluster):
        series = figure13_series(cluster, total_log2=TOTAL)
        assert series[0].label.startswith("Scan-MN-MPS")

    def test_combination_study(self, big_cluster):
        study = figure13_combination_study(
            big_cluster, total_gpus=8, total_log2=TOTAL, n_values=(14, TOTAL)
        )
        assert (2, 4) in study and (8, 1) in study
        assert all(t > 0 for times in study.values() for t in times.values())

    def test_figure14_breakdown_phases(self, cluster):
        out = figure14_breakdown(cluster, total_log2=TOTAL, n_values=(14, 16))
        for bd in out.values():
            assert set(bd) == {
                "stage1", "mpi_barrier", "mpi_gather", "stage2",
                "mpi_scatter", "stage3",
            }


class TestMetrics:
    def test_mean_speedup(self):
        a = FigureSeries("a", [(1, 10.0), (2, 20.0)])
        b = FigureSeries("b", [(1, 5.0), (2, 5.0)])
        assert mean_speedup(a, b) == pytest.approx((2 + 4) / 2)

    def test_disjoint_series_rejected(self):
        a = FigureSeries("a", [(1, 10.0)])
        b = FigureSeries("b", [(2, 5.0)])
        with pytest.raises(TuningError):
            mean_speedup(a, b)

    def test_throughput_at_missing(self):
        s = FigureSeries("s", [(1, 1.0)])
        with pytest.raises(KeyError):
            s.throughput_at(9)


class TestReporting:
    def test_series_table_renders(self):
        series = [
            FigureSeries("ours", [(13, 1.0), (14, 2.0)]),
            FigureSeries("lib", [(13, 0.5)]),
        ]
        text = format_series_table("Title", series)
        assert "Title" in text and "ours" in text
        assert "-" in text  # the missing lib point at n=14

    def test_breakdown_table_renders(self):
        text = format_breakdown_table(
            "BD", {13: {"stage1": 1e-3, "mpi_gather": 2e-3}}
        )
        assert "stage1" in text and "total" in text
