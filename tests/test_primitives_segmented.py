"""Tests for segmented scans (the Thrust/CUB baseline mode of Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.primitives.operators import MAX
from repro.primitives.segmented import (
    segmented_exclusive_scan,
    segmented_inclusive_scan,
    segments_to_flags,
)


def reference_segmented(data, flags, op=np.add):
    out = np.empty_like(data)
    starts = [i for i, f in enumerate(flags) if f] or [0]
    if starts[0] != 0:
        starts = [0] + starts
    bounds = starts + [len(data)]
    for a, b in zip(bounds[:-1], bounds[1:]):
        out[a:b] = op.accumulate(data[a:b])
    return out


class TestFlags:
    def test_from_lengths(self):
        flags = segments_to_flags(np.array([2, 3, 1]))
        np.testing.assert_array_equal(flags, [1, 0, 1, 0, 0, 1])

    def test_total_validation(self):
        with pytest.raises(ConfigurationError):
            segments_to_flags(np.array([2, 2]), total=5)

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(ConfigurationError):
            segments_to_flags(np.array([2, 0, 1]))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            segments_to_flags(np.array([], dtype=np.int64))


class TestInclusive:
    def test_single_segment_is_plain_scan(self, rng):
        data = rng.integers(0, 100, 64).astype(np.int64)
        flags = np.zeros(64, dtype=bool)
        flags[0] = True
        np.testing.assert_array_equal(
            segmented_inclusive_scan(data, flags), np.cumsum(data)
        )

    def test_restarts_at_heads(self, rng):
        data = rng.integers(0, 100, 10).astype(np.int64)
        flags = segments_to_flags(np.array([4, 3, 3]))
        np.testing.assert_array_equal(
            segmented_inclusive_scan(data, flags), reference_segmented(data, flags)
        )

    def test_every_element_own_segment(self, rng):
        data = rng.integers(0, 100, 16).astype(np.int64)
        flags = np.ones(16, dtype=bool)
        np.testing.assert_array_equal(segmented_inclusive_scan(data, flags), data)

    def test_generic_operator_path(self, rng):
        data = rng.integers(-50, 50, 20).astype(np.int32)
        flags = segments_to_flags(np.array([7, 6, 7]))
        expected = reference_segmented(data, flags, np.maximum)
        np.testing.assert_array_equal(
            segmented_inclusive_scan(data, flags, MAX), expected
        )

    def test_implicit_first_head(self, rng):
        data = rng.integers(0, 10, 8).astype(np.int64)
        flags = np.zeros(8, dtype=bool)  # position 0 unset: tolerated
        flags[4] = True
        out = segmented_inclusive_scan(data, flags)
        np.testing.assert_array_equal(out[:4], np.cumsum(data[:4]))
        np.testing.assert_array_equal(out[4:], np.cumsum(data[4:]))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            segmented_inclusive_scan(np.arange(8), np.zeros(4, dtype=bool))

    @given(
        st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=12),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60)
    def test_property_matches_reference(self, lengths, seed):
        rng = np.random.default_rng(seed)
        flags = segments_to_flags(np.asarray(lengths))
        data = rng.integers(-100, 100, flags.size).astype(np.int64)
        np.testing.assert_array_equal(
            segmented_inclusive_scan(data, flags), reference_segmented(data, flags)
        )


class TestExclusive:
    def test_heads_get_identity(self, rng):
        data = rng.integers(1, 100, 12).astype(np.int64)
        flags = segments_to_flags(np.array([5, 7]))
        out = segmented_exclusive_scan(data, flags)
        assert out[0] == 0 and out[5] == 0
        np.testing.assert_array_equal(out[1:5], np.cumsum(data[:5])[:-1])
        np.testing.assert_array_equal(out[6:], np.cumsum(data[5:])[:-1])

    @given(
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40)
    def test_property_inclusive_relation(self, lengths, seed):
        rng = np.random.default_rng(seed)
        flags = segments_to_flags(np.asarray(lengths))
        data = rng.integers(-100, 100, flags.size).astype(np.int64)
        inc = segmented_inclusive_scan(data, flags)
        exc = segmented_exclusive_scan(data, flags)
        np.testing.assert_array_equal(inc, exc + data)
