"""Differential oracle suite: every proposal vs the sequential reference.

Two layers of defence:

- a deterministic grid — all seven registered proposals x (add, max, mul)
  x (int32, int64) — so the acceptance matrix is pinned regardless of
  random draws;
- hypothesis-randomised shapes/operators/dtypes per proposal, including
  the G=1 edge and inclusive/exclusive, plus ragged (non-power-of-two)
  coverage through :func:`repro.core.ragged.scan_ragged`, which is how
  non-power-of-two problems legally enter the library.

The oracle is :mod:`repro.primitives.sequential` (plain numpy ufunc
accumulate). Integer comparisons are exact; float addition re-associates
across chunks, so float draws use allclose with dtype-scaled tolerances
(mirroring ``tests/test_dtype_coverage.py``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import scan
from repro.core.executor import proposal_names
from repro.core.ragged import scan_ragged
from repro.core.session import ScanSession
from repro.interconnect.topology import tsubame_kfc
from repro.primitives.sequential import exclusive_scan, inclusive_scan

#: (proposal, placement kwargs, nodes) — every registered proposal on a
#: legal placement of the paper's 2-networks-x-4-GPUs node.
PROPOSALS = [
    ("sp", {}, 1),
    ("pp", {"W": 4}, 1),
    ("mps", {"W": 4, "V": 4}, 1),
    ("mppc", {"W": 8, "V": 4}, 1),
    ("mn-mps", {"W": 4, "V": 4, "M": 2}, 2),
    ("chained", {}, 1),
    ("sp-dlb", {}, 1),
]

GRID_OPERATORS = ["add", "max", "mul"]
GRID_DTYPES = [np.int32, np.int64]


def oracle(data, operator, inclusive):
    ref = inclusive_scan if inclusive else exclusive_scan
    return ref(data, op=operator, axis=-1)


def draw_batch(rng, g, n, dtype, operator):
    if operator == "mul":
        # Products explode; tiny factors keep signal without overflow
        # mattering (wrap-around is identical on both sides anyway).
        return rng.integers(1, 3, (g, n)).astype(dtype)
    return rng.integers(-40, 90, (g, n)).astype(dtype)


def test_registry_is_fully_covered():
    """The grid below must break when a new proposal is registered."""
    assert sorted(p[0] for p in PROPOSALS) == sorted(proposal_names())


class TestDifferentialGrid:
    """Deterministic matrix: 7 proposals x 3 operators x 2 dtypes."""

    @pytest.mark.parametrize("dtype", GRID_DTYPES, ids=lambda d: np.dtype(d).name)
    @pytest.mark.parametrize("operator", GRID_OPERATORS)
    @pytest.mark.parametrize("proposal,kwargs,nodes", PROPOSALS,
                             ids=[p[0] for p in PROPOSALS])
    def test_matches_sequential_oracle(self, rng, proposal, kwargs, nodes,
                                       operator, dtype):
        machine = tsubame_kfc(nodes)
        data = draw_batch(rng, 8, 1 << 11, dtype, operator)
        result = scan(data, topology=machine, proposal=proposal,
                      operator=operator, **kwargs)
        assert result.output.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(
            result.output, oracle(data, operator, inclusive=True)
        )


class TestDifferentialRandomized:
    """Hypothesis-drawn shapes (G=1 edge included), operator, dtype,
    inclusive/exclusive — one suite per proposal, one shared session per
    proposal so warm-path caching is exercised across draws too."""

    @pytest.mark.parametrize("proposal,kwargs,nodes", PROPOSALS,
                             ids=[p[0] for p in PROPOSALS])
    @given(
        g=st.sampled_from([0, 1, 3, 5]),
        n=st.integers(min_value=8, max_value=12),
        operator=st.sampled_from(["add", "max", "min", "mul"]),
        dtype=st.sampled_from([np.int32, np.int64]),
        inclusive=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_draws_match_oracle(self, proposal, kwargs, nodes,
                                       g, n, operator, dtype, inclusive, seed):
        machine = tsubame_kfc(nodes)
        session = ScanSession(machine)
        rng = np.random.default_rng(seed)
        data = draw_batch(rng, 1 << g, 1 << n, dtype, operator)
        result = session.scan(data, proposal=proposal, operator=operator,
                              inclusive=inclusive, **kwargs)
        np.testing.assert_array_equal(
            result.output, oracle(data, operator, inclusive)
        )

    @pytest.mark.parametrize("proposal,kwargs,nodes",
                             [p for p in PROPOSALS if p[0] != "chained"],
                             ids=[p[0] for p in PROPOSALS if p[0] != "chained"])
    # sp-dlb stays in: its lookback fold is the canonical chain association
    # (bit-identical to the chained executor), well inside the tolerances.
    @given(
        n=st.integers(min_value=9, max_value=13),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_float_add_close_to_oracle(self, proposal, kwargs, nodes, n, seed):
        """Float addition re-associates across chunks/GPUs; the parallel
        result must stay within accumulation tolerance of the oracle."""
        machine = tsubame_kfc(nodes)
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 10, (4, 1 << n)).astype(np.float64)
        result = scan(data, topology=machine, proposal=proposal, **kwargs)
        np.testing.assert_allclose(
            result.output, oracle(data, "add", True), rtol=1e-12, atol=1e-9
        )


class TestAdaptiveDifferential:
    """The control layer adjusts batching and latency, never payloads:
    for every registered proposal, a service wearing the adaptive stack
    under bursty traffic returns outputs bit-identical to a statically
    configured service over the same schedule."""

    @pytest.mark.parametrize("proposal,kwargs,nodes", PROPOSALS,
                             ids=[p[0] for p in PROPOSALS])
    def test_adaptive_outputs_bit_identical_to_static(self, proposal,
                                                      kwargs, nodes):
        from repro.control import ServiceControllerConfig, adaptive_controller
        from repro.serve import ScanService, bursty_workload

        workload = bursty_workload(24, sizes_log2=(10,), base_rate=2e3,
                                   burst_rate=1e6, burst_every=24,
                                   burst_len=12, seed=17)

        def serve(controller):
            service = ScanService(
                topology=tsubame_kfc(nodes), max_batch=2, max_wait_s=1e-4,
                proposal=proposal, controller=controller, **kwargs,
            )
            tickets = [service.submit(req.data, operator=req.operator,
                                      inclusive=req.inclusive, at=req.at_s)
                       for req in workload]
            service.drain()
            return service, tickets

        config = ServiceControllerConfig(
            high_rate=1e5, low_rate=1e4, batch_ceiling=8,
            wait_ceiling_s=1e-4, cooldown_s=5e-6, window=8, min_samples=4,
        )
        _, static_tickets = serve(None)
        adaptive_service, adaptive_tickets = serve(adaptive_controller(config))
        # The burst genuinely moved the knobs on the adaptive arm...
        assert any(d.action == "scale_up"
                   for d in adaptive_service.controller.decisions)
        # ...and the payloads never noticed.
        for static_t, adaptive_t in zip(static_tickets, adaptive_tickets):
            np.testing.assert_array_equal(static_t.result(),
                                          adaptive_t.result())


class TestDifferentialRagged:
    """Non-power-of-two problems enter through the ragged layer; identity
    padding must leave every real element's prefix untouched."""

    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=3000),
                         min_size=1, max_size=6),
        operator=st.sampled_from(["add", "max", "min"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_ragged_matches_oracle(self, lengths, operator, seed):
        machine = tsubame_kfc(1)
        rng = np.random.default_rng(seed)
        arrays = [rng.integers(-40, 90, size).astype(np.int64)
                  for size in lengths]
        outputs, _ = scan_ragged(arrays, machine, operator=operator)
        for arr, out in zip(arrays, outputs):
            np.testing.assert_array_equal(
                out, inclusive_scan(arr, op=operator)
            )

    def test_single_element_problem(self, rng):
        """The smallest legal problem: N=1, G=1."""
        machine = tsubame_kfc(1)
        data = rng.integers(-5, 5, (1, 1)).astype(np.int32)
        result = scan(data, topology=machine, proposal="sp")
        np.testing.assert_array_equal(result.output, data)
